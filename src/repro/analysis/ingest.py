"""Ingest-cost breakdown: replay ``dataset_build``/``partition``/cache events.

The ingest plane (dataset generation, partitioning, dataset cache) traces
itself through the same :class:`~repro.observability.tracer.Tracer` the
engine uses: spans for the wall-clock envelope, instant events carrying
measured ``seconds`` for each phase inside it.  This module re-derives the
ingest cost breakdown from the events alone and cross-checks it against the
span totals, the same trust-but-verify pattern as
:func:`~repro.analysis.trace_replay.crosscheck_trace` — a phase that forgot
to emit its event shows up as a span/event mismatch, not as silently
missing cost.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Mapping

from ..observability.tracer import TracePacket

__all__ = ["replay_ingest_breakdown", "crosscheck_ingest"]

#: Event kind -> breakdown category.
_CATEGORY = {
    "dataset_build": "generate",
    "partition": "partition",
    "cache_hit": "cache",
    "cache_miss": "cache",
}


def replay_ingest_breakdown(events: Iterable[Mapping]) -> dict[str, float]:
    """Sum event ``seconds`` into ``{"generate", "partition", "cache"}``.

    Every ingest event carries the measured seconds of the work it reports:
    ``dataset_build`` events one generation phase each, ``partition`` events
    one partitioning call each, ``cache_hit``/``cache_miss`` events the
    cache read / write cost.  Categories missing from the stream are
    reported as 0.0 so callers can subtract without key checks.
    """
    out: dict[str, float] = {"generate": 0.0, "partition": 0.0, "cache": 0.0}
    for e in events:
        category = _CATEGORY.get(e.get("kind", ""))
        if category is not None:
            out[category] += float(e["seconds"])
    return out


def ingest_phase_seconds(events: Iterable[Mapping]) -> dict[str, float]:
    """Finer-grained view: ``phase -> seconds`` for ``dataset_build`` events."""
    phases: dict[str, float] = defaultdict(float)
    for e in events:
        if e.get("kind") == "dataset_build":
            phases[e.get("phase", "?")] += float(e["seconds"])
    return dict(phases)


def crosscheck_ingest(
    packet: TracePacket,
    *,
    rel_tol: float = 0.05,
    abs_tol: float = 0.05,
) -> list[str]:
    """Compare event-derived ingest costs against the recorded span walls.

    For each traced category, the sum of the category's event ``seconds``
    must match the total duration of the covering spans within tolerance
    (the spans additionally contain only loop/bookkeeping overhead).
    Returns human-readable mismatch descriptions; empty means the event
    stream accounts for the ingest wall the spans measured.

    Cache traffic is event-only (loads/stores happen outside any build
    span), so it is replayed but has no span to check against.
    """
    problems: list[str] = []
    breakdown = replay_ingest_breakdown(packet.events)
    span_totals: dict[str, float] = defaultdict(float)
    for span in packet.spans:
        if span.name in ("dataset_build", "partition"):
            span_totals[span.name] += span.dur_ns / 1e9
    for span_name, category in (("dataset_build", "generate"), ("partition", "partition")):
        want = span_totals[span_name]
        got = breakdown[category]
        if not want and not got:
            continue
        if abs(got - want) > rel_tol * max(abs(want), abs(got)) + abs_tol:
            problems.append(
                f"{category}: events total {got:.4f}s != span total {want:.4f}s"
            )
    return problems
