"""Behavioral tests for the batched message plane.

Covers the host-local short-circuit (including temporal self-sends), frame
coalescing, the pending-local quiescence rule, and sender-side combiners.
"""

import numpy as np

from repro.core import EngineConfig, Pattern, TimeSeriesComputation, run_application
from repro.graph import build_collection
from repro.partition import HashPartitioner, partition_graph
from tests.conftest import make_grid_template


def _case(partitions=2):
    tpl = make_grid_template(4, 6)
    coll = build_collection(tpl, 1)
    pg = partition_graph(tpl, partitions, HashPartitioner(seed=1))
    return tpl, coll, pg


def _by_partition(pg):
    per = {}
    for sg in pg.subgraphs:
        per.setdefault(sg.partition_id, []).append(sg.subgraph_id)
    return per


class Broadcast(TimeSeriesComputation):
    """Every subgraph messages every other subgraph once at superstep 0."""

    pattern = Pattern.INDEPENDENT

    def __init__(self, all_ids):
        self.all_ids = list(all_ids)

    def compute(self, ctx):
        if ctx.superstep == 0:
            for sgid in self.all_ids:
                if sgid != ctx.subgraph.subgraph_id:
                    ctx.send_to_subgraph(sgid, 1)
        else:
            ctx.state["got"] = len(ctx.messages)
        ctx.vote_to_halt()


class TestShortCircuitAndFrames:
    def test_local_vs_remote_classification(self):
        _tpl, coll, pg = _case()
        per = _by_partition(pg)
        assert any(len(ids) > 1 for ids in per.values()), "need co-located subgraphs"
        n = pg.num_subgraphs
        res = run_application(Broadcast([sg.subgraph_id for sg in pg.subgraphs]), pg, coll)

        expected_local = sum(len(ids) * (len(ids) - 1) for ids in per.values())
        m = res.metrics
        assert m.total_local_messages() == expected_local
        assert m.total_remote_messages() == n * (n - 1) - expected_local
        assert m.total_messages() == n * (n - 1)
        # Every receiver saw all n-1 messages regardless of route.
        assert all(st.get("got") == n - 1 for st in res.states.values())

    def test_one_frame_per_partition_pair(self):
        _tpl, coll, pg = _case()
        res = run_application(Broadcast([sg.subgraph_id for sg in pg.subgraphs]), pg, coll)
        m = res.metrics
        # All remote sends happen in superstep 0: each host packs exactly one
        # frame per *other* partition, so the driver routes P*(P-1) frames —
        # far fewer units than the individual remote messages.
        p = pg.num_partitions
        assert m.total_frames() == p * (p - 1)
        assert m.total_frames() < m.total_remote_messages()
        assert 0.0 < m.cut_traffic_ratio() < 1.0

    def test_summary_reports_plane_counters(self):
        _tpl, coll, pg = _case()
        res = run_application(Broadcast([sg.subgraph_id for sg in pg.subgraphs]), pg, coll)
        s = res.metrics.summary()
        assert s["messages"] == s["local_messages"] + s["remote_messages"]
        assert s["frames"] == res.metrics.total_frames()


class LocalPing(TimeSeriesComputation):
    """One same-partition send; the receiver must still be woken up."""

    pattern = Pattern.INDEPENDENT

    def __init__(self, src, dst):
        self.src = int(src)
        self.dst = int(dst)

    def compute(self, ctx):
        sgid = ctx.subgraph.subgraph_id
        if ctx.superstep == 0 and sgid == self.src:
            ctx.send_to_subgraph(self.dst, "ping")
        if sgid == self.dst and ctx.messages:
            ctx.output([m.payload for m in ctx.messages])
        ctx.vote_to_halt()


class TestPendingLocalQuiescence:
    def test_local_only_superstep_messages_are_delivered(self):
        """The engine must not quiesce while hosts hold local deliveries.

        After superstep 0 no frames reach the driver and every subgraph has
        voted to halt — only the hosts' ``has_pending_local`` flags reveal
        the short-circuited message still in flight.
        """
        _tpl, coll, pg = _case()
        per = _by_partition(pg)
        ids = next(ids for ids in per.values() if len(ids) > 1)
        src, dst = ids[0], ids[1]
        res = run_application(LocalPing(src, dst), pg, coll)
        assert [rec for _t, _sg, rec in res.outputs] == [["ping"]]
        m = res.metrics
        assert m.total_remote_messages() == 0
        assert m.total_frames() == 0
        assert m.total_local_messages() == 1
        # Delivery needed a second superstep.
        assert m.supersteps_per_timestep[0] >= 2


class Carry(TimeSeriesComputation):
    """Sequentially dependent accumulator via temporal self-sends."""

    pattern = Pattern.SEQUENTIALLY_DEPENDENT

    def compute(self, ctx):
        if ctx.superstep == 0:
            prev = sum(m.payload for m in ctx.messages) if ctx.messages else 0
            ctx.state["acc"] = prev + 1
        ctx.vote_to_halt()

    def end_of_timestep(self, ctx):
        ctx.send_to_next_timestep(ctx.state["acc"])


class TestTemporalShortCircuit:
    def test_temporal_self_sends_never_leave_the_host(self):
        tpl = make_grid_template(4, 6)
        coll = build_collection(tpl, 3)
        pg = partition_graph(tpl, 2, HashPartitioner(seed=1))
        res = run_application(Carry(), pg, coll)
        m = res.metrics
        assert m.total_local_messages() > 0
        assert m.total_remote_messages() == 0
        assert m.total_frames() == 0
        assert all(st["acc"] == 3 for st in res.states.values())


class SumInto(TimeSeriesComputation):
    """Many senders, one target; a combiner can fold them per host."""

    pattern = Pattern.INDEPENDENT

    def __init__(self, senders, target):
        self.senders = set(int(s) for s in senders)
        self.target = int(target)

    def combine(self, dst, payloads):
        return sum(payloads)

    def compute(self, ctx):
        sgid = ctx.subgraph.subgraph_id
        if ctx.superstep == 0 and sgid in self.senders:
            ctx.send_to_subgraph(self.target, 1)
        if sgid == self.target and ctx.messages:
            ctx.output(
                (
                    sum(m.payload for m in ctx.messages),
                    len(ctx.messages),
                    [m.source_subgraph for m in ctx.messages],
                )
            )
        ctx.vote_to_halt()


class TestCombiners:
    def _setup(self):
        _tpl, coll, pg = _case()
        per = _by_partition(pg)
        senders = next(ids for ids in per.values() if len(ids) > 1)
        target = next(
            ids[0] for p, ids in per.items() if not set(ids) & set(senders)
        )
        return coll, pg, senders, target

    def test_combiner_reduces_remote_messages(self):
        coll, pg, senders, target = self._setup()
        on = run_application(SumInto(senders, target), pg, coll)
        off = run_application(
            SumInto(senders, target), pg, coll, config=EngineConfig(combiners=False)
        )
        # Same aggregate either way...
        total_on, count_on, sources_on = next(rec for _t, _sg, rec in on.outputs)
        total_off, count_off, sources_off = next(rec for _t, _sg, rec in off.outputs)
        assert total_on == total_off == len(senders)
        # ...but the combined run ships one message where the raw run ships N,
        # and the combined envelope no longer names a single source.
        assert count_on == 1 and count_off == len(senders)
        assert sources_on == [None]
        assert set(sources_off) == set(senders)
        assert on.metrics.total_remote_messages() == 1
        assert off.metrics.total_remote_messages() == len(senders)

    def test_combiner_never_applied_to_single_messages(self):
        coll, pg, senders, target = self._setup()
        res = run_application(SumInto(senders[:1], target), pg, coll)
        _total, count, sources = next(rec for _t, _sg, rec in res.outputs)
        assert count == 1
        assert sources == [senders[0]]  # original envelope, untouched

    def test_combiner_never_folds_across_kind_or_timestep(self):
        """Mixed kinds/timesteps to one destination keep separate envelopes."""
        from repro.core.messages import Message, MessageKind
        from repro.runtime.host import ComputeHost

        host = ComputeHost.__new__(ComputeHost)
        host._combine = lambda dst, payloads: sum(payloads)
        sends = [
            (1, Message(1, 0, 0, MessageKind.SUPERSTEP)),
            (1, Message(2, 0, 0, MessageKind.TEMPORAL)),
            (1, Message(4, 0, 0, MessageKind.SUPERSTEP)),
            (1, Message(8, 0, 1, MessageKind.SUPERSTEP)),
        ]
        out = ComputeHost._combined(host, sends)
        assert [(d, m.payload, m.kind, m.timestep) for d, m in out] == [
            (1, 5, MessageKind.SUPERSTEP, 0),
            (1, 2, MessageKind.TEMPORAL, 0),
            (1, 8, MessageKind.SUPERSTEP, 1),
        ]
