"""Behavioral tests for the TI-BSP engine: the Section II-D semantics."""

import numpy as np
import pytest

from repro.core import (
    EngineConfig,
    Pattern,
    TIBSPEngine,
    TimeSeriesComputation,
    run_application,
)
from repro.core.messages import MessageKind
from repro.graph import build_collection
from repro.partition import HashPartitioner, partition_graph
from repro.runtime import CostModel
from tests.conftest import make_grid_template


@pytest.fixture
def setup():
    tpl = make_grid_template(4, 5)
    coll = build_collection(tpl, 4, delta=2.0)
    pg = partition_graph(tpl, 3, HashPartitioner(seed=1))
    return tpl, coll, pg


class Recorder(TimeSeriesComputation):
    """Records every compute invocation for post-hoc assertions."""

    pattern = Pattern.SEQUENTIALLY_DEPENDENT

    def __init__(self):
        self.calls = []  # (timestep, superstep, sgid, [payloads], [kinds])

    def compute(self, ctx):
        self.calls.append(
            (
                ctx.timestep,
                ctx.superstep,
                ctx.subgraph.subgraph_id,
                [m.payload for m in ctx.messages],
                [m.kind for m in ctx.messages],
            )
        )
        ctx.vote_to_halt()


class TestBasicScheduling:
    def test_all_subgraphs_invoked_every_timestep(self, setup):
        _, coll, pg = setup
        rec = Recorder()
        run_application(rec, pg, coll)
        for t in range(4):
            invoked = {c[2] for c in rec.calls if c[0] == t and c[1] == 0}
            assert invoked == {sg.subgraph_id for sg in pg.subgraphs}

    def test_timesteps_strictly_ordered(self, setup):
        _, coll, pg = setup
        rec = Recorder()
        run_application(rec, pg, coll)
        timesteps = [c[0] for c in rec.calls]
        assert timesteps == sorted(timesteps)

    def test_halted_subgraphs_not_reinvoked(self, setup):
        _, coll, pg = setup
        rec = Recorder()
        res = run_application(rec, pg, coll)
        # Everyone halts at superstep 0 with no messages → exactly one
        # superstep per timestep.
        assert all(c[1] == 0 for c in rec.calls)
        assert res.timesteps_executed == 4

    def test_timestep_range(self, setup):
        _, coll, pg = setup
        rec = Recorder()
        res = run_application(rec, pg, coll, timestep_range=(1, 3))
        assert {c[0] for c in rec.calls} == {1, 2}
        assert res.timesteps_executed == 2

    def test_bad_timestep_range(self, setup):
        _, coll, pg = setup
        with pytest.raises(ValueError):
            run_application(Recorder(), pg, coll, timestep_range=(0, 99))


class TestMessaging:
    def test_superstep_message_delivered_next_superstep(self, setup):
        _, coll, pg = setup
        target = pg.subgraphs[-1].subgraph_id

        class Pinger(Recorder):
            def compute(s, ctx):
                super(Pinger, s).compute(ctx)
                if ctx.superstep == 0 and ctx.subgraph.subgraph_id == 0:
                    ctx.send_to_subgraph(target, ("ping", ctx.timestep))

        rec = Pinger()
        run_application(rec, pg, coll, timestep_range=(0, 1))
        received = [c for c in rec.calls if c[2] == target and c[3]]
        assert len(received) == 1
        t, s, _, payloads, kinds = received[0]
        assert s == 1  # next superstep
        assert payloads == [("ping", 0)]
        assert kinds == [MessageKind.SUPERSTEP]

    def test_reactivation_of_halted_subgraph(self, setup):
        """A halted subgraph computes again when a message arrives."""
        _, coll, pg = setup
        target = pg.subgraphs[-1].subgraph_id

        class LatePing(Recorder):
            def compute(s, ctx):
                super(LatePing, s).compute(ctx)
                if ctx.subgraph.subgraph_id == 0 and ctx.superstep < 2:
                    ctx.send_to_subgraph(0, "self")  # keep 0 alive
                    if ctx.superstep == 1:
                        ctx.send_to_subgraph(target, "wake")

        rec = LatePing()
        run_application(rec, pg, coll, timestep_range=(0, 1))
        target_steps = [c[1] for c in rec.calls if c[2] == target]
        assert target_steps == [0, 2]  # woken at superstep 2 only

    def test_temporal_message_arrives_next_timestep_superstep0(self, setup):
        _, coll, pg = setup

        class Temporal(Recorder):
            def compute(s, ctx):
                super(Temporal, s).compute(ctx)
                ctx.send_to_next_timestep(("from", ctx.timestep))

        rec = Temporal()
        run_application(rec, pg, coll)
        for t, s, sgid, payloads, kinds in rec.calls:
            if t > 0:
                assert s == 0
                assert payloads == [("from", t - 1)]
                assert all(k is MessageKind.TEMPORAL for k in kinds)

    def test_cross_subgraph_temporal_send(self, setup):
        _, coll, pg = setup
        target = pg.subgraphs[-1].subgraph_id

        class CrossTemporal(Recorder):
            def compute(s, ctx):
                super(CrossTemporal, s).compute(ctx)
                if ctx.subgraph.subgraph_id == 0 and ctx.timestep == 0:
                    ctx.send_to_subgraph_in_next_timestep(target, "hop")

        rec = CrossTemporal()
        run_application(rec, pg, coll)
        received = [c for c in rec.calls if c[0] == 1 and c[2] == target]
        assert received[0][3] == ["hop"]

    def test_inputs_seq_dependent_only_first_timestep(self, setup):
        _, coll, pg = setup
        rec = Recorder()
        run_application(rec, pg, coll, inputs=[(0, "seed")])
        with_input = [(c[0], c[2]) for c in rec.calls if "seed" in c[3]]
        assert with_input == [(0, 0)]

    def test_inputs_independent_every_timestep(self, setup):
        _, coll, pg = setup

        class Indep(Recorder):
            pattern = Pattern.INDEPENDENT

        rec = Indep()
        run_application(rec, pg, coll, inputs=[(0, "seed")])
        with_input = sorted((c[0], c[2]) for c in rec.calls if "seed" in c[3])
        assert with_input == [(t, 0) for t in range(4)]
        assert all(k is MessageKind.APP_INPUT for c in rec.calls if c[3] for k in c[4])


class TestTermination:
    def test_while_loop_early_halt(self, setup):
        _, coll, pg = setup

        class HaltAfterTwo(Recorder):
            def compute(s, ctx):
                super(HaltAfterTwo, s).compute(ctx)
                if ctx.timestep >= 1:
                    ctx.vote_to_halt_timestep()
                else:
                    ctx.send_to_next_timestep("go")

        res = run_application(HaltAfterTwo(), pg, coll)
        assert res.timesteps_executed == 2
        assert res.halted_early

    def test_votes_without_message_silence_do_not_halt(self, setup):
        _, coll, pg = setup

        class VoteButSend(Recorder):
            def compute(s, ctx):
                super(VoteButSend, s).compute(ctx)
                ctx.vote_to_halt_timestep()
                ctx.send_to_next_timestep("still-going")

        res = run_application(VoteButSend(), pg, coll)
        assert res.timesteps_executed == 4  # temporal messages keep it alive
        assert not res.halted_early

    def test_partial_votes_do_not_halt(self, setup):
        _, coll, pg = setup

        class OneAbstains(Recorder):
            def compute(s, ctx):
                super(OneAbstains, s).compute(ctx)
                if ctx.subgraph.subgraph_id != 0:
                    ctx.vote_to_halt_timestep()

        res = run_application(OneAbstains(), pg, coll)
        assert res.timesteps_executed == 4

    def test_runaway_superstep_guard(self, setup):
        _, coll, pg = setup

        class Forever(TimeSeriesComputation):
            pattern = Pattern.SEQUENTIALLY_DEPENDENT

            def compute(self, ctx):
                ctx.send_to_subgraph(ctx.subgraph.subgraph_id, "loop")

        config = EngineConfig(max_supersteps=10)
        with pytest.raises(RuntimeError, match="max_supersteps"):
            run_application(Forever(), pg, coll, config=config)


class TestEndOfTimestepAndState:
    def test_end_of_timestep_called_once_per_subgraph(self, setup):
        _, coll, pg = setup

        class EOT(Recorder):
            def __init__(self):
                super().__init__()
                self.eot = []

            def end_of_timestep(self, ctx):
                self.eot.append((ctx.timestep, ctx.subgraph.subgraph_id))
                ctx.output("eot-record")

        rec = EOT()
        res = run_application(rec, pg, coll)
        assert len(rec.eot) == 4 * pg.num_subgraphs
        assert len(res.outputs) == 4 * pg.num_subgraphs

    def test_state_persists_across_supersteps_and_timesteps(self, setup):
        _, coll, pg = setup

        class Counter(TimeSeriesComputation):
            pattern = Pattern.SEQUENTIALLY_DEPENDENT

            def compute(self, ctx):
                ctx.state["n"] = ctx.state.get("n", 0) + 1
                ctx.vote_to_halt()

            def end_of_timestep(self, ctx):
                if ctx.timestep == ctx.num_timesteps - 1:
                    ctx.output(ctx.state["n"])

        res = run_application(Counter(), pg, coll)
        assert all(rec == 4 for rec in res.all_output_records())
        assert set(res.states) == {sg.subgraph_id for sg in pg.subgraphs}
        assert all(st["n"] == 4 for st in res.states.values())

    def test_collect_states_disabled(self, setup):
        _, coll, pg = setup
        res = run_application(
            Recorder(), pg, coll, config=EngineConfig(collect_states=False)
        )
        assert res.states == {}


class TestMergePhase:
    def test_merge_receives_own_messages_in_timestep_order(self, setup):
        _, coll, pg = setup

        class MergeOrder(TimeSeriesComputation):
            pattern = Pattern.EVENTUALLY_DEPENDENT

            def compute(self, ctx):
                if ctx.superstep == 0:
                    ctx.send_to_merge(ctx.timestep)
                ctx.vote_to_halt()

            def merge(self, ctx):
                if ctx.superstep == 0:
                    ctx.output([m.payload for m in ctx.messages])
                ctx.vote_to_halt()

        res = run_application(MergeOrder(), pg, coll)
        assert len(res.merge_outputs) == pg.num_subgraphs
        for _sg, payload in res.merge_outputs:
            assert payload == [0, 1, 2, 3]

    def test_merge_superstep_messaging(self, setup):
        _, coll, pg = setup

        class MergeChat(TimeSeriesComputation):
            pattern = Pattern.EVENTUALLY_DEPENDENT

            def compute(self, ctx):
                ctx.vote_to_halt()

            def merge(self, ctx):
                if ctx.superstep == 0:
                    ctx.send_to_subgraph(0, ctx.subgraph.subgraph_id)
                    if ctx.subgraph.subgraph_id != 0:
                        ctx.vote_to_halt()
                else:
                    if ctx.subgraph.subgraph_id == 0 and ctx.messages:
                        ctx.output(sorted(m.payload for m in ctx.messages))
                    ctx.vote_to_halt()

        res = run_application(MergeChat(), pg, coll)
        (sg0, collected), = res.merge_outputs
        assert sg0 == 0
        assert collected == sorted(sg.subgraph_id for sg in pg.subgraphs)

    def test_merge_not_implemented_raises(self, setup):
        _, coll, pg = setup

        class NoMerge(TimeSeriesComputation):
            pattern = Pattern.EVENTUALLY_DEPENDENT

            def compute(self, ctx):
                ctx.vote_to_halt()

        with pytest.raises(NotImplementedError):
            run_application(NoMerge(), pg, coll)


class TestExecutors:
    @pytest.mark.parametrize("executor", ["serial", "thread"])
    def test_executors_equivalent(self, setup, executor):
        _, coll, pg = setup

        class Sum(TimeSeriesComputation):
            pattern = Pattern.SEQUENTIALLY_DEPENDENT

            def compute(self, ctx):
                if ctx.superstep == 0:
                    prev = sum(m.payload for m in ctx.messages) if ctx.messages else 0
                    ctx.state["acc"] = prev + ctx.subgraph.num_vertices
                ctx.vote_to_halt()

            def end_of_timestep(self, ctx):
                ctx.send_to_next_timestep(ctx.state["acc"])
                if ctx.timestep == ctx.num_timesteps - 1:
                    ctx.output(ctx.state["acc"])

        res = run_application(Sum(), pg, coll, config=EngineConfig(executor=executor))
        per_sg = {sg: rec for _t, sg, rec in res.outputs}
        expected = {sg.subgraph_id: 4 * sg.num_vertices for sg in pg.subgraphs}
        assert per_sg == expected

    def test_process_executor_requires_sources(self, setup):
        _, coll, pg = setup
        with pytest.raises(ValueError, match="sources"):
            run_application(Recorder(), pg, coll, config=EngineConfig(executor="process"))

    def test_unknown_executor(self, setup):
        _, coll, pg = setup
        with pytest.raises(ValueError):
            run_application(Recorder(), pg, coll, config=EngineConfig(executor="quantum"))


class TestMetricsIntegration:
    def test_metrics_recorded(self, setup):
        _, coll, pg = setup
        res = run_application(Recorder(), pg, coll, config=EngineConfig(cost_model=CostModel.free()))
        m = res.metrics
        assert m.num_timesteps_executed() == 4
        assert len(m.timestep_series()) == 4
        assert m.total_wall() > 0
        assert len(m.partition_breakdown()) == pg.num_partitions

    def test_result_helpers(self, setup):
        _, coll, pg = setup

        class Out(Recorder):
            def end_of_timestep(self, ctx):
                ctx.output(("rec", ctx.timestep))

        res = run_application(Out(), pg, coll)
        by_t = res.outputs_by_timestep()
        assert set(by_t) == {0, 1, 2, 3}
        by_sg = res.outputs_by_subgraph()
        assert set(by_sg) == {sg.subgraph_id for sg in pg.subgraphs}
        assert len(res.all_output_records()) == 4 * pg.num_subgraphs
        assert res.total_wall_s == res.metrics.total_wall()


class TestPartitionState:
    def test_shared_within_partition_not_across(self, setup):
        """ctx.partition_state is one dict per host, visible to all its
        subgraphs across supersteps and timesteps — Giraph++-style
        partition-centric scope."""
        _, coll, pg = setup

        class PartitionCounter(TimeSeriesComputation):
            pattern = Pattern.SEQUENTIALLY_DEPENDENT

            def compute(self, ctx):
                ctx.partition_state["count"] = ctx.partition_state.get("count", 0) + 1
                ctx.vote_to_halt()

            def end_of_timestep(self, ctx):
                if ctx.timestep == ctx.num_timesteps - 1:
                    ctx.output(ctx.partition_state["count"])

        res = run_application(PartitionCounter(), pg, coll)
        # Every subgraph of a partition reports the same partition-wide
        # total: (subgraphs in partition) × timesteps.
        by_partition = {}
        for _t, sgid, count in res.outputs:
            pid = pg.subgraphs[sgid].partition_id
            by_partition.setdefault(pid, set()).add(count)
        for pid, counts in by_partition.items():
            assert counts == {pg.partitions[pid].num_subgraphs * 4}

    def test_cache_shared_columns(self, setup):
        """The intended use: gather an instance column once per partition."""
        _, coll, pg = setup
        gathers = []

        class CachedGather(TimeSeriesComputation):
            pattern = Pattern.INDEPENDENT

            def compute(self, ctx):
                key = ("traffic", ctx.timestep)
                if key not in ctx.partition_state:
                    gathers.append(ctx.subgraph.partition_id)
                    ctx.partition_state[key] = ctx.instance.vertex_column("traffic")
                ctx.vote_to_halt()

        run_application(CachedGather(), pg, coll, timestep_range=(0, 2))
        # One gather per partition per timestep, not per subgraph.
        assert len(gathers) == pg.num_partitions * 2
