"""Byte-identical results across serial / thread / process executors.

The batched message plane changes delivery routes (host-local short-circuit,
per-partition frames, combiners) but must not change *what* applications
compute: for each algorithm family the three executor backends have to agree
bit-for-bit on outputs, merge outputs, and final subgraph states.
"""

import dataclasses

import numpy as np
import pytest

from repro.algorithms.hashtag import HashtagAggregationComputation
from repro.algorithms.meme import MemeTrackingComputation
from repro.algorithms.tdsp import TDSPComputation
from repro.core import EngineConfig, run_application
from repro.graph import build_collection
from repro.partition import HashPartitioner, partition_graph
from repro.runtime import CollectionInstanceSource
from repro.storage import GoFS
from tests.conftest import make_grid_template, populate_random

PARTITIONS = 3


@pytest.fixture(scope="module")
def case():
    tpl = make_grid_template(5, 6)
    coll = build_collection(tpl, 4, populate_random(23), delta=6.0)
    pg = partition_graph(tpl, PARTITIONS, HashPartitioner(seed=3))
    return tpl, coll, pg


def _computation(name, pg):
    if name == "tdsp":
        return TDSPComputation(0)
    if name == "meme":
        return MemeTrackingComputation(1)
    return HashtagAggregationComputation.for_partitioned_graph(pg, 2)


def _canonical(obj):
    """Structural canonical form with byte-exact leaves.

    Containers are walked recursively; ndarray leaves become
    ``(dtype str, shape, raw data bytes)`` so equality is bit-for-bit on the
    data while being insensitive to incidental *object-identity* sharing
    (in-process arrays share the interned dtype singleton, arrays rebuilt
    from out-of-band pickle buffers each carry their own dtype object — a
    whole-container pickle encodes that difference in its memo graph even
    when every value is identical).
    """
    if isinstance(obj, np.ndarray):
        return ("ndarray", str(obj.dtype), obj.shape, obj.tobytes())
    if isinstance(obj, dict):
        return ("dict", tuple(sorted((_canonical(k), _canonical(v)) for k, v in obj.items())))
    if isinstance(obj, (list, tuple)):
        return (type(obj).__name__, tuple(_canonical(x) for x in obj))
    if isinstance(obj, (set, frozenset)):
        return ("set", tuple(sorted(_canonical(x) for x in obj)))
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = tuple(
            (f.name, _canonical(getattr(obj, f.name))) for f in dataclasses.fields(obj)
        )
        return (type(obj).__qualname__, fields)
    if isinstance(obj, (np.generic, bool, int, float, complex, str, bytes, type(None))):
        return (type(obj).__qualname__, obj)
    raise TypeError(f"unhandled type in equivalence snapshot: {type(obj)!r}")


def _snapshot(name, pg, coll, executor):
    sources = (
        [CollectionInstanceSource(coll) for _ in range(PARTITIONS)]
        if executor == "process"
        else None
    )
    res = run_application(
        _computation(name, pg),
        pg,
        coll,
        sources=sources,
        config=EngineConfig(executor=executor),
    )
    return (
        _canonical(res.outputs),
        _canonical(res.merge_outputs),
        _canonical(res.states),
    )


@pytest.mark.parametrize("name", ["tdsp", "meme", "hash"])
@pytest.mark.parametrize("executor", ["thread", "process"])
def test_executor_matches_serial(case, name, executor):
    _tpl, coll, pg = case
    serial = _snapshot(name, pg, coll, "serial")
    other = _snapshot(name, pg, coll, executor)
    assert other == serial


@pytest.fixture(scope="module")
def gofs_store(case, tmp_path_factory):
    """The same case written as a GoFS store with 2 packs (packing=2)."""
    _tpl, coll, pg = case
    root = tmp_path_factory.mktemp("gofs-equiv")
    GoFS.write_collection(root, pg, coll, packing=2, binning=2)
    return root


@pytest.mark.parametrize("executor", ["serial", "thread", "process"])
@pytest.mark.parametrize("prefetch", [False, True])
def test_gofs_prefetch_matches_serial_collection(case, gofs_store, executor, prefetch):
    """GoFS-backed runs — prefetch on or off — agree bit-for-bit with the
    in-memory collection baseline on every executor backend."""
    _tpl, coll, pg = case
    baseline = _snapshot("tdsp", pg, coll, "serial")
    sources = GoFS.partition_views(gofs_store, prefetch=prefetch, cache_packs=2)
    res = run_application(
        _computation("tdsp", pg),
        pg,
        coll,
        sources=sources,
        config=EngineConfig(executor=executor),
    )
    got = (
        _canonical(res.outputs),
        _canonical(res.merge_outputs),
        _canonical(res.states),
    )
    assert got == baseline
