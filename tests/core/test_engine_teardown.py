"""Every engine exit path reaps its background threads.

Regression tests for the teardown bugfix: the live plane's heartbeat
watchdog and GoFS prefetch workers are daemon threads created during
``TIBSPEngine.run``; an exit path that skips the ``finally`` teardown
(cluster-spawn failure, resume-signature mismatch, a Ctrl-C, a fatal
``RunFailureError``) used to leak them past the run.
"""

import threading
import time

import pytest

from repro.core import EngineConfig, Pattern, TimeSeriesComputation, run_application
from repro.generators import road_latency_collection, road_network
from repro.observability import LiveConfig
from repro.partition import partition_graph
from repro.resilience import (
    CheckpointConfig,
    FaultPlan,
    RecoveryPolicy,
    RunFailureError,
)
from repro.storage import GoFS

NUM_PARTITIONS = 2

#: Names of every background thread the engine may start during a run.
ENGINE_THREAD_PREFIXES = ("tibsp-live-heartbeat", "gofs-prefetch")


class Accumulate(TimeSeriesComputation):
    pattern = Pattern.SEQUENTIALLY_DEPENDENT

    def compute(self, ctx):
        if ctx.superstep == 0:
            prev = sum(m.payload for m in ctx.messages) if ctx.messages else 0
            ctx.state["acc"] = prev + ctx.subgraph.num_vertices
        ctx.vote_to_halt()

    def end_of_timestep(self, ctx):
        ctx.send_to_next_timestep(ctx.state["acc"])
        ctx.output(ctx.state["acc"])


class InterruptAtT1(Accumulate):
    """Simulates the user hitting Ctrl-C mid-run."""

    def compute(self, ctx):
        if ctx.timestep == 1:
            raise KeyboardInterrupt
        super().compute(ctx)


def _leaked_engine_threads(timeout_s=5.0):
    """Engine-owned threads still alive after a grace period (they wind
    down asynchronously; only ones that *stay* alive are leaks)."""
    deadline = time.monotonic() + timeout_s
    while True:
        leaked = [
            th for th in threading.enumerate()
            if th.is_alive() and th.name.startswith(ENGINE_THREAD_PREFIXES)
        ]
        if not leaked or time.monotonic() > deadline:
            return leaked
        time.sleep(0.02)


@pytest.fixture
def case():
    tpl = road_network(200, seed=5)
    coll = road_latency_collection(tpl, 3, seed=5)
    pg = partition_graph(tpl, NUM_PARTITIONS)
    return coll, pg


def _live():
    # interval 0 disables periodic snapshots; the tiny heartbeat guarantees
    # the watchdog thread actually exists for the duration of the run.
    return LiveConfig(interval_s=0.0, heartbeat_s=0.05)


def test_no_leak_on_cluster_spawn_failure(case):
    """The live plane starts before the cluster; a spawn failure must
    still stop its heartbeat."""
    coll, pg = case
    with pytest.raises(ValueError, match="instance sources"):
        run_application(
            Accumulate(), pg, coll,
            config=EngineConfig(executor="process", live=_live()),
        )
    assert _leaked_engine_threads() == []


def test_no_leak_on_keyboard_interrupt(case):
    coll, pg = case
    with pytest.raises(KeyboardInterrupt):
        run_application(
            InterruptAtT1(), pg, coll,
            config=EngineConfig(live=_live()),
        )
    assert _leaked_engine_threads() == []


def test_no_leak_on_resume_signature_mismatch(case, tmp_path):
    coll, pg = case
    ck = CheckpointConfig(dir=tmp_path, every=1)
    run_application(Accumulate(), pg, coll, config=EngineConfig(checkpoint=ck))

    class OtherPattern(Accumulate):
        pattern = Pattern.EVENTUALLY_DEPENDENT

    with pytest.raises(ValueError, match="does not match this run"):
        run_application(
            OtherPattern(), pg, coll,
            config=EngineConfig(checkpoint=ck, live=_live()),
            resume_from=True,
        )
    assert _leaked_engine_threads() == []


def test_no_leak_on_run_failure(case, tmp_path):
    """A fatal RunFailureError reaps the heartbeat *and* the GoFS
    prefetch pools the sources spun up."""
    coll, pg = case
    root = tmp_path / "gofs"
    GoFS.write_collection(root, pg, coll, packing=2, binning=3)
    sources = GoFS.partition_views(root, prefetch=True, cache_packs=2)
    with pytest.raises(RunFailureError):
        run_application(
            Accumulate(), pg, coll, sources=sources,
            config=EngineConfig(
                live=_live(),
                checkpoint=CheckpointConfig(dir=tmp_path / "ck", every=1),
                faults=FaultPlan.parse("kill@t1:p0", seed=3),
                recovery=RecoveryPolicy(backoff_s=0.0, max_retries=0),
            ),
        )
    assert _leaked_engine_threads() == []
