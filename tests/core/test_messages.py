"""Tests for messages, send buffers, and bulk routing."""

import numpy as np

from repro.core.messages import (
    Message,
    MessageKind,
    SendBuffer,
    group_by_destination,
)


class TestMessage:
    def test_defaults(self):
        m = Message("hello")
        assert m.kind is MessageKind.SUPERSTEP
        assert m.source_subgraph is None
        assert m.timestep == -1

    def test_approx_size_numpy(self):
        m = Message(np.zeros(10, dtype=np.float64))
        assert m.approx_size() == 80

    def test_approx_size_bytes_and_str(self):
        assert Message(b"abcd").approx_size() == 4
        assert Message("abc").approx_size() == 3

    def test_approx_size_containers(self):
        assert Message([1, 2, 3]).approx_size() == 48
        assert Message({}).approx_size() == 16

    def test_approx_size_scalar(self):
        assert Message(5).approx_size() == 16

    def test_immutable(self):
        m = Message(1)
        try:
            m.payload = 2
            raised = False
        except AttributeError:
            raised = True
        assert raised


class TestSendBuffer:
    def test_counts_and_bytes(self):
        b = SendBuffer()
        b.superstep_sends.append((1, Message(np.zeros(4))))
        b.temporal_sends.append((2, Message(b"xx")))
        b.merge_sends.append(Message("abc"))
        assert b.total_messages() == 3
        assert b.total_bytes() == 32 + 2 + 3

    def test_extend(self):
        a, b = SendBuffer(), SendBuffer()
        a.voted_halt = True
        b.voted_halt = True
        b.superstep_sends.append((0, Message(1)))
        b.outputs.append("rec")
        a.extend(b)
        assert a.total_messages() == 1
        assert a.outputs == ["rec"]
        assert a.voted_halt  # both voted

    def test_extend_halt_requires_both(self):
        a, b = SendBuffer(), SendBuffer()
        a.voted_halt = True
        b.voted_halt = False
        a.extend(b)
        assert not a.voted_halt


class TestGroupByDestination:
    def test_grouping_preserves_order(self):
        msgs = [(2, Message("a")), (1, Message("b")), (2, Message("c"))]
        grouped = group_by_destination(msgs)
        assert [m.payload for m in grouped[2]] == ["a", "c"]
        assert [m.payload for m in grouped[1]] == ["b"]

    def test_empty(self):
        assert group_by_destination([]) == {}
