"""Tests for messages, send buffers, frames, and bulk routing."""

import numpy as np
import pytest

from repro.core.messages import (
    Message,
    MessageFrame,
    MessageKind,
    SendBuffer,
    frames_from_deliveries,
    group_by_destination,
    route_frames,
)


class TestMessage:
    def test_defaults(self):
        m = Message("hello")
        assert m.kind is MessageKind.SUPERSTEP
        assert m.source_subgraph is None
        assert m.timestep == -1

    def test_approx_size_numpy(self):
        m = Message(np.zeros(10, dtype=np.float64))
        assert m.approx_size() == 80

    def test_approx_size_bytes_and_str(self):
        assert Message(b"abcd").approx_size() == 4
        assert Message("abc").approx_size() == 3

    def test_approx_size_containers(self):
        assert Message([1, 2, 3]).approx_size() == 48
        assert Message({}).approx_size() == 16

    def test_approx_size_scalar(self):
        assert Message(5).approx_size() == 16

    def test_immutable(self):
        m = Message(1)
        try:
            m.payload = 2
            raised = False
        except AttributeError:
            raised = True
        assert raised


class TestSendBuffer:
    def test_counts_and_bytes(self):
        b = SendBuffer()
        b.superstep_sends.append((1, Message(np.zeros(4))))
        b.temporal_sends.append((2, Message(b"xx")))
        b.merge_sends.append(Message("abc"))
        assert b.total_messages() == 3
        assert b.total_bytes() == 32 + 2 + 3

    def test_extend(self):
        a, b = SendBuffer(), SendBuffer()
        a.voted_halt = True
        b.voted_halt = True
        b.superstep_sends.append((0, Message(1)))
        b.outputs.append("rec")
        a.extend(b)
        assert a.total_messages() == 1
        assert a.outputs == ["rec"]
        assert a.voted_halt  # both voted

    def test_extend_halt_requires_both(self):
        a, b = SendBuffer(), SendBuffer()
        a.voted_halt = True
        b.voted_halt = False
        a.extend(b)
        assert not a.voted_halt

    def test_fold_into_fresh_accumulator_adopts_votes(self):
        """Folding all-voting buffers into an empty accumulator must halt.

        Regression: a fresh accumulator's default ``voted_halt=False`` used
        to be ANDed in as a standing no-vote, so batched hosts could never
        see a unanimous halt.
        """
        acc = SendBuffer()
        for _ in range(3):
            b = SendBuffer()
            b.voted_halt = True
            b.voted_halt_timestep = True
            acc.extend(b)
        assert acc.voted_halt
        assert acc.voted_halt_timestep

    def test_extend_preserves_directly_cast_vote(self):
        """A vote cast directly on the accumulator participates in the fold.

        Regression: a folded-buffer counter of 0 used to mean "fresh", so
        the first :meth:`extend` overwrote a standing vote already cast on
        the accumulator itself (e.g. by a compute call).
        """
        acc = SendBuffer()
        acc.voted_halt = False  # cast directly: this subgraph does not halt
        b = SendBuffer()
        b.voted_halt = True
        acc.extend(b)
        assert not acc.voted_halt

    def test_extend_non_voting_buffer_blocks_halt(self):
        """Folding a buffer that cast no vote counts as a no-halt vote."""
        acc = SendBuffer()
        acc.voted_halt = True  # cast directly
        acc.extend(SendBuffer())
        assert not acc.voted_halt

    def test_fold_all_of_semantics(self):
        """One dissenting buffer anywhere in the sequence blocks the halt."""
        votes = [True, False, True]
        acc = SendBuffer()
        for v in votes:
            b = SendBuffer()
            b.voted_halt = v
            acc.extend(b)
        assert not acc.voted_halt
        # And once lost, a later yes-vote cannot restore it.
        late = SendBuffer()
        late.voted_halt = True
        acc.extend(late)
        assert not acc.voted_halt


class TestMessageFrame:
    def test_pack_precomputes_sizes(self):
        sends = [(3, Message(np.zeros(4))), (7, Message(b"xy"))]
        frame = MessageFrame.pack(0, 1, sends)
        assert len(frame) == 2
        assert frame.nbytes == 32 + 2
        assert frame.destinations.dtype == np.int64
        assert list(frame.destinations) == [3, 7]

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="per message"):
            MessageFrame(0, 1, np.array([1, 2], dtype=np.int64), [Message("a")])

    def test_deliver_into_appends_in_order(self):
        frame = MessageFrame.pack(
            0, 1, [(5, Message("a")), (6, Message("b")), (5, Message("c"))]
        )
        inbox = {5: [Message("z")]}
        frame.deliver_into(inbox)
        assert [m.payload for m in inbox[5]] == ["z", "a", "c"]
        assert [m.payload for m in inbox[6]] == ["b"]

    def test_frames_from_deliveries_one_frame_per_partition(self):
        sg_part = np.array([0, 0, 1], dtype=np.int64)
        deliveries = {0: [Message("a")], 1: [Message("b")], 2: [Message("c")]}
        per_part = frames_from_deliveries(deliveries, sg_part, 2)
        assert len(per_part) == 2
        assert len(per_part[0]) == 1 and len(per_part[0][0]) == 2
        assert len(per_part[1]) == 1 and list(per_part[1][0].destinations) == [2]

    def test_frames_from_deliveries_skips_empty_partitions(self):
        sg_part = np.array([0, 1], dtype=np.int64)
        per_part = frames_from_deliveries({0: [Message("a")]}, sg_part, 2)
        assert per_part[1] == []

    def test_route_frames(self):
        f01 = MessageFrame.pack(0, 1, [(9, Message("a"))])
        f21 = MessageFrame.pack(2, 1, [(9, Message("b"))])
        f10 = MessageFrame.pack(1, 0, [(0, Message("c"))])
        routed = route_frames([f01, f10, f21], 3)
        assert routed[0] == [f10]
        assert routed[1] == [f01, f21]
        assert routed[2] == []


class TestGroupByDestination:
    def test_grouping_preserves_order(self):
        msgs = [(2, Message("a")), (1, Message("b")), (2, Message("c"))]
        grouped = group_by_destination(msgs)
        assert [m.payload for m in grouped[2]] == ["a", "c"]
        assert [m.payload for m in grouped[1]] == ["b"]

    def test_empty(self):
        assert group_by_destination([]) == {}
