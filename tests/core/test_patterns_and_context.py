"""Tests for design patterns and execution contexts."""

import numpy as np
import pytest

from repro.core.context import ComputeContext, EndOfTimestepContext, MergeContext
from repro.core.messages import Message, MessageKind, SendBuffer
from repro.core.patterns import Pattern
from repro.graph import RemoteEdges, Subgraph
from repro.graph.instance import GraphInstance
from repro.graph.template import GraphTemplate


def tiny_subgraph():
    return Subgraph(
        3,
        0,
        np.array([0, 1]),
        np.array([0, 1, 2]),
        np.array([1, 0]),
        np.array([0, 0]),
    )


def make_ctx(pattern=Pattern.SEQUENTIALLY_DEPENDENT, timestep=1, superstep=0, num_timesteps=5):
    tpl = GraphTemplate(2, [0], [1])
    sg = tiny_subgraph()
    buffer = SendBuffer()
    ctx = ComputeContext(
        sg,
        GraphInstance(tpl, float(timestep)),
        timestep,
        superstep,
        [],
        {},
        pattern,
        num_timesteps,
        delta=5.0,
        t0=10.0,
        buffer=buffer,
    )
    return ctx, buffer


class TestPattern:
    def test_temporal_messages(self):
        assert Pattern.SEQUENTIALLY_DEPENDENT.allows_temporal_messages
        assert not Pattern.INDEPENDENT.allows_temporal_messages
        assert not Pattern.EVENTUALLY_DEPENDENT.allows_temporal_messages

    def test_merge(self):
        assert Pattern.EVENTUALLY_DEPENDENT.has_merge
        assert not Pattern.SEQUENTIALLY_DEPENDENT.has_merge

    def test_temporal_parallelism(self):
        assert Pattern.INDEPENDENT.temporally_parallel
        assert Pattern.EVENTUALLY_DEPENDENT.temporally_parallel
        assert not Pattern.SEQUENTIALLY_DEPENDENT.temporally_parallel


class TestComputeContext:
    def test_properties(self):
        ctx, _ = make_ctx(timestep=2, superstep=0)
        assert ctx.is_first_superstep
        assert not ctx.is_first_timestep
        assert ctx.timestamp == 10.0 + 2 * 5.0

    def test_send_to_subgraph(self):
        ctx, buf = make_ctx()
        ctx.send_to_subgraph(9, "payload")
        (dst, msg), = buf.superstep_sends
        assert dst == 9
        assert msg.kind is MessageKind.SUPERSTEP
        assert msg.source_subgraph == 3
        assert msg.timestep == 1

    def test_send_to_next_timestep(self):
        ctx, buf = make_ctx()
        ctx.send_to_next_timestep("x")
        (dst, msg), = buf.temporal_sends
        assert dst == 3  # same subgraph
        assert msg.kind is MessageKind.TEMPORAL

    def test_send_to_subgraph_in_next_timestep(self):
        ctx, buf = make_ctx()
        ctx.send_to_subgraph_in_next_timestep(7, "x")
        (dst, msg), = buf.temporal_sends
        assert dst == 7

    def test_temporal_send_dropped_at_last_timestep(self):
        ctx, buf = make_ctx(timestep=4, num_timesteps=5)
        ctx.send_to_next_timestep("x")
        ctx.send_to_subgraph_in_next_timestep(0, "y")
        assert buf.temporal_sends == []

    def test_temporal_send_wrong_pattern_raises(self):
        for pattern in (Pattern.INDEPENDENT, Pattern.EVENTUALLY_DEPENDENT):
            ctx, _ = make_ctx(pattern=pattern)
            with pytest.raises(RuntimeError, match="sequentially dependent"):
                ctx.send_to_next_timestep("x")

    def test_send_to_merge_requires_pattern(self):
        ctx, buf = make_ctx(pattern=Pattern.EVENTUALLY_DEPENDENT)
        ctx.send_to_merge("m")
        assert len(buf.merge_sends) == 1
        ctx2, _ = make_ctx(pattern=Pattern.SEQUENTIALLY_DEPENDENT)
        with pytest.raises(RuntimeError, match="eventually dependent"):
            ctx2.send_to_merge("m")

    def test_votes(self):
        ctx, buf = make_ctx()
        ctx.vote_to_halt()
        ctx.vote_to_halt_timestep()
        assert buf.voted_halt and buf.voted_halt_timestep

    def test_output(self):
        ctx, buf = make_ctx()
        ctx.output({"k": 1})
        assert buf.outputs == [{"k": 1}]


class TestEndOfTimestepContext:
    def test_temporal_send_and_votes(self):
        tpl = GraphTemplate(2, [0], [1])
        buf = SendBuffer()
        ctx = EndOfTimestepContext(
            tiny_subgraph(),
            GraphInstance(tpl, 0.0),
            1,
            {},
            Pattern.SEQUENTIALLY_DEPENDENT,
            5,
            5.0,
            0.0,
            buf,
        )
        assert ctx.timestamp == 5.0
        ctx.send_to_next_timestep("s")
        ctx.vote_to_halt_timestep()
        assert len(buf.temporal_sends) == 1 and buf.voted_halt_timestep


class TestMergeContext:
    def test_send_and_halt(self):
        buf = SendBuffer()
        ctx = MergeContext(
            tiny_subgraph(), 0, [Message("x")], {}, Pattern.EVENTUALLY_DEPENDENT, 5, 1.0, 0.0, buf
        )
        assert [m.payload for m in ctx.messages] == ["x"]
        ctx.send_to_subgraph(2, "y")
        ctx.vote_to_halt()
        (dst, msg), = buf.superstep_sends
        assert dst == 2 and msg.kind is MessageKind.MERGE
        assert buf.voted_halt
