"""Tests for temporally parallel execution (the paper's unexploited concurrency)."""

import numpy as np
import pytest

from repro.algorithms import (
    HashtagAggregationComputation,
    PageRankComputation,
    TDSPComputation,
    TopNComputation,
    pagerank_from_result,
)
from repro.core import Pattern, TimeSeriesComputation, run_application, run_temporally_parallel
from repro.generators import (
    CompositePopulator,
    SIRTweetPopulator,
    TrafficPopulator,
    make_collection,
)
from repro.partition import HashPartitioner, partition_graph
from tests.conftest import make_grid_template


@pytest.fixture
def case():
    tpl = make_grid_template(5, 6)
    sir = SIRTweetPopulator(tpl, [0, 1], hit_probability=0.4, num_timesteps=10, seed=3)
    coll = make_collection(tpl, 10, CompositePopulator([sir, TrafficPopulator(seed=4)]))
    pg = partition_graph(tpl, 3, HashPartitioner(seed=1))
    return tpl, coll, pg


class TestEquivalence:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_hash_matches_serial(self, case, workers):
        tpl, coll, pg = case
        comp = HashtagAggregationComputation.for_partitioned_graph(pg, 0)
        serial = run_application(comp, pg, coll)
        par = run_temporally_parallel(pg, coll, comp, workers=workers)
        (s_sg, s_sum), = serial.merge_outputs
        (p_sg, p_sum), = par.merge_outputs
        assert s_sg == p_sg
        assert np.array_equal(s_sum.counts, p_sum.counts)
        assert par.timesteps_executed == 10
        assert par.simulated_makespan is not None

    def test_topn_matches_serial(self, case):
        tpl, coll, pg = case
        comp = TopNComputation(3, "traffic")
        serial = run_application(comp, pg, coll)
        par = run_temporally_parallel(pg, coll, comp, workers=3)
        a = {r.timestep: r.vertices.tolist() for r in serial.all_output_records()}
        b = {r.timestep: r.vertices.tolist() for r in par.all_output_records()}
        assert a == b

    def test_multi_superstep_computation(self, case):
        """PageRank uses many supersteps per timestep — still equivalent."""
        tpl, coll, pg = case
        comp = PageRankComputation(8)
        par = run_temporally_parallel(pg, coll, comp, workers=3, timestep_range=(0, 2))
        serial = run_application(comp, pg, coll, timestep_range=(0, 2))
        # Same instance → same ranks regardless of which worker ran it.
        got = pagerank_from_result(par, tpl.num_vertices)
        want = pagerank_from_result(serial, tpl.num_vertices)
        np.testing.assert_allclose(got, want, atol=1e-12)

    def test_outputs_sorted_by_timestep(self, case):
        tpl, coll, pg = case
        par = run_temporally_parallel(pg, coll, TopNComputation(2, "traffic"), workers=4)
        timesteps = [t for t, _sg, _r in par.outputs]
        assert timesteps == sorted(timesteps)


class TestValidation:
    def test_sequentially_dependent_rejected(self, case):
        tpl, coll, pg = case
        with pytest.raises(ValueError, match="independent or eventually"):
            run_temporally_parallel(pg, coll, TDSPComputation(0), workers=2)

    def test_invalid_workers(self, case):
        tpl, coll, pg = case
        with pytest.raises(ValueError, match="workers"):
            run_temporally_parallel(pg, coll, TopNComputation(1, "traffic"), workers=0)

    def test_bad_range(self, case):
        tpl, coll, pg = case
        with pytest.raises(ValueError, match="range"):
            run_temporally_parallel(
                pg, coll, TopNComputation(1, "traffic"), workers=2, timestep_range=(0, 99)
            )

    def test_worker_error_propagates(self, case):
        tpl, coll, pg = case

        class Boom(TimeSeriesComputation):
            pattern = Pattern.INDEPENDENT

            def compute(self, ctx):
                if ctx.timestep == 3:
                    raise RuntimeError("deliberate failure")
                ctx.vote_to_halt()

        with pytest.raises(RuntimeError, match="deliberate failure"):
            run_temporally_parallel(pg, coll, Boom(), workers=2)


class TestMakespan:
    def test_makespan_not_exceeding_serial_total(self, case):
        """Pipelined makespan ≤ sum of all timestep walls (+merge)."""
        tpl, coll, pg = case
        comp = HashtagAggregationComputation.for_partitioned_graph(pg, 0)
        par = run_temporally_parallel(pg, coll, comp, workers=4)
        total = par.metrics.total_wall()
        assert par.simulated_makespan <= total + 1e-9
