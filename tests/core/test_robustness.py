"""Robustness tests: error propagation, makespan scheduling, edge cases."""

import numpy as np
import pytest

from repro.core import (
    EngineConfig,
    Pattern,
    TimeSeriesComputation,
    pipelined_makespan,
    run_application,
)
from repro.graph import build_collection
from repro.partition import HashPartitioner, partition_graph
from tests.conftest import make_grid_template


@pytest.fixture
def setup():
    tpl = make_grid_template(4, 4)
    coll = build_collection(tpl, 3)
    pg = partition_graph(tpl, 2, HashPartitioner(seed=1))
    return tpl, coll, pg


class TestErrorPropagation:
    def test_compute_error_surfaces(self, setup):
        _, coll, pg = setup

        class Boom(TimeSeriesComputation):
            def compute(self, ctx):
                raise ValueError("compute exploded")

        with pytest.raises(ValueError, match="compute exploded"):
            run_application(Boom(), pg, coll)

    def test_end_of_timestep_error_surfaces(self, setup):
        _, coll, pg = setup

        class Boom(TimeSeriesComputation):
            def compute(self, ctx):
                ctx.vote_to_halt()

            def end_of_timestep(self, ctx):
                raise RuntimeError("eot exploded")

        with pytest.raises(RuntimeError, match="eot exploded"):
            run_application(Boom(), pg, coll)

    def test_merge_error_surfaces(self, setup):
        _, coll, pg = setup

        class Boom(TimeSeriesComputation):
            pattern = Pattern.EVENTUALLY_DEPENDENT

            def compute(self, ctx):
                ctx.vote_to_halt()

            def merge(self, ctx):
                raise KeyError("merge exploded")

        with pytest.raises(KeyError, match="merge exploded"):
            run_application(Boom(), pg, coll)

    def test_thread_executor_error_surfaces(self, setup):
        _, coll, pg = setup

        class Boom(TimeSeriesComputation):
            def compute(self, ctx):
                raise ValueError("threaded boom")

        with pytest.raises(ValueError, match="threaded boom"):
            run_application(Boom(), pg, coll, config=EngineConfig(executor="thread"))

    def test_error_at_late_timestep(self, setup):
        """The failure point's timestep is not swallowed by earlier success."""
        _, coll, pg = setup
        seen = []

        class LateBoom(TimeSeriesComputation):
            def compute(self, ctx):
                seen.append(ctx.timestep)
                if ctx.timestep == 2:
                    raise RuntimeError("late")
                ctx.vote_to_halt()

        with pytest.raises(RuntimeError, match="late"):
            run_application(LateBoom(), pg, coll)
        assert max(seen) == 2  # timesteps 0 and 1 completed first


class TestPipelinedMakespan:
    def test_single_worker_is_sum(self):
        assert pipelined_makespan([1.0, 2.0, 3.0], 1) == pytest.approx(6.0)

    def test_perfect_split(self):
        assert pipelined_makespan([1.0, 1.0, 1.0, 1.0], 2) == pytest.approx(2.0)

    def test_lpt_handles_skew(self):
        # One big timestep dominates: makespan = the big one.
        assert pipelined_makespan([10.0, 1.0, 1.0, 1.0], 4) == pytest.approx(10.0)
        assert pipelined_makespan([10.0, 1.0, 1.0, 1.0], 2) == pytest.approx(10.0)

    def test_merge_added(self):
        assert pipelined_makespan([2.0, 2.0], 2, merge_wall=1.0) == pytest.approx(3.0)

    def test_empty_walls(self):
        assert pipelined_makespan([], 3, merge_wall=0.5) == pytest.approx(0.5)

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            pipelined_makespan([1.0], 0)

    def test_never_below_max_wall_or_mean_load(self):
        rng = np.random.default_rng(0)
        walls = rng.uniform(0.1, 5.0, 20).tolist()
        for w in (1, 2, 3, 7):
            m = pipelined_makespan(walls, w)
            assert m >= max(walls) - 1e-12
            assert m >= sum(walls) / w - 1e-12


class TestEdgeCases:
    def test_zero_timestep_range(self, setup):
        _, coll, pg = setup

        class Noop(TimeSeriesComputation):
            def compute(self, ctx):
                ctx.vote_to_halt()

        res = run_application(Noop(), pg, coll, timestep_range=(1, 1))
        assert res.timesteps_executed == 0
        assert res.outputs == []

    def test_single_vertex_graph(self):
        from repro.graph import GraphTemplate

        tpl = GraphTemplate(1, [], [])
        coll = build_collection(tpl, 2)
        pg = partition_graph(tpl, 1, HashPartitioner())

        class Emit(TimeSeriesComputation):
            def compute(self, ctx):
                ctx.output(ctx.subgraph.num_vertices)
                ctx.vote_to_halt()

        res = run_application(Emit(), pg, coll)
        assert res.all_output_records() == [1, 1]

    def test_message_to_own_subgraph(self, setup):
        """Self-messages are delivered like any other (next superstep)."""
        _, coll, pg = setup

        class SelfPing(TimeSeriesComputation):
            def compute(self, ctx):
                if ctx.superstep == 0:
                    ctx.send_to_subgraph(ctx.subgraph.subgraph_id, "me")
                else:
                    assert [m.payload for m in ctx.messages] == ["me"]
                    ctx.output("got")
                ctx.vote_to_halt()

        res = run_application(SelfPing(), pg, coll, timestep_range=(0, 1))
        assert len(res.all_output_records()) == pg.num_subgraphs

    def test_large_payload_cost_accounted(self, setup):
        _, coll, pg = setup
        target = pg.subgraphs[-1].subgraph_id

        class BigSend(TimeSeriesComputation):
            def compute(self, ctx):
                if ctx.superstep == 0 and ctx.subgraph.subgraph_id == 0:
                    ctx.send_to_subgraph(target, np.zeros(1_000_000))
                ctx.vote_to_halt()

        res = run_application(BigSend(), pg, coll, timestep_range=(0, 1))
        # 8 MB over ~117 MiB/s ≈ 65 ms of modeled send time.
        sender = [r for r in res.metrics.step_records if r.bytes_sent > 0]
        assert sender and sender[0].send_s > 0.01
