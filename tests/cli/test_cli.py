"""Smoke tests for the tibsp CLI (tiny scales)."""

import pytest

from repro.cli import main


class TestCLI:
    def test_datasets(self, capsys):
        assert main(["datasets", "--scale", "500"]) == 0
        out = capsys.readouterr().out
        assert "CARN" in out and "WIKI" in out

    def test_edgecuts(self, capsys):
        assert main(["edgecuts", "--scale", "400"]) == 0
        out = capsys.readouterr().out
        assert "edge_cut_%" in out

    def test_run_tdsp(self, capsys):
        assert main([
            "run", "tdsp", "--scale", "400", "--instances", "5",
            "--partitions", "3", "--graph", "CARN",
        ]) == 0
        out = capsys.readouterr().out
        assert "time per timestep" in out
        assert "Per-partition utilization" in out

    def test_run_meme_with_gc(self, capsys):
        assert main([
            "run", "meme", "--scale", "400", "--instances", "5",
            "--partitions", "3", "--graph", "WIKI", "--gc",
        ]) == 0

    def test_run_hash(self, capsys):
        assert main([
            "run", "hash", "--scale", "300", "--instances", "4", "--partitions", "3",
        ]) == 0

    def test_fig5b(self, capsys):
        assert main(["fig5b", "--scale", "300", "--instances", "4", "--partitions", "3"]) == 0
        out = capsys.readouterr().out
        assert "Giraph" in out

    def test_store(self, tmp_path, capsys):
        root = tmp_path / "store"
        assert main([
            "store", str(root), "--scale", "300", "--instances", "4", "--partitions", "3",
        ]) == 0
        assert (root / "manifest.json").exists()

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestNewSubcommands:
    def test_run_reach(self, capsys):
        assert main([
            "run", "reach", "--scale", "400", "--instances", "5", "--partitions", "3",
        ]) == 0
        assert "reach on CARN" in capsys.readouterr().out

    def test_run_evolve(self, capsys):
        assert main([
            "run", "evolve", "--scale", "400", "--instances", "4",
            "--partitions", "3", "--graph", "WIKI",
        ]) == 0
        assert "communities per timestep" in capsys.readouterr().out

    def test_run_stats(self, capsys):
        assert main([
            "run", "stats", "--scale", "300", "--instances", "4", "--partitions", "3",
        ]) == 0
        assert "mean latency" in capsys.readouterr().out

    def test_run_with_rebalance_and_export(self, tmp_path, capsys):
        out = tmp_path / "summary.json"
        assert main([
            "run", "tdsp", "--scale", "400", "--instances", "5",
            "--partitions", "3", "--rebalance", "--export", str(out),
        ]) == 0
        text = capsys.readouterr().out
        assert "migrations applied" in text
        assert out.exists()

    def test_run_thread_executor(self, capsys):
        assert main([
            "run", "meme", "--scale", "300", "--instances", "4",
            "--partitions", "2", "--executor", "thread",
        ]) == 0
