"""Smoke tests for the tibsp CLI (tiny scales)."""

import pytest

from repro.cli import main


class TestCLI:
    def test_datasets(self, capsys):
        assert main(["datasets", "--scale", "500"]) == 0
        out = capsys.readouterr().out
        assert "CARN" in out and "WIKI" in out

    def test_edgecuts(self, capsys):
        assert main(["edgecuts", "--scale", "400"]) == 0
        out = capsys.readouterr().out
        assert "edge_cut_%" in out

    def test_run_tdsp(self, capsys):
        assert main([
            "run", "tdsp", "--scale", "400", "--instances", "5",
            "--partitions", "3", "--graph", "CARN",
        ]) == 0
        out = capsys.readouterr().out
        assert "time per timestep" in out
        assert "Per-partition utilization" in out

    def test_run_meme_with_gc(self, capsys):
        assert main([
            "run", "meme", "--scale", "400", "--instances", "5",
            "--partitions", "3", "--graph", "WIKI", "--gc",
        ]) == 0

    def test_run_hash(self, capsys):
        assert main([
            "run", "hash", "--scale", "300", "--instances", "4", "--partitions", "3",
        ]) == 0

    def test_fig5b(self, capsys):
        assert main(["fig5b", "--scale", "300", "--instances", "4", "--partitions", "3"]) == 0
        out = capsys.readouterr().out
        assert "Giraph" in out

    def test_store(self, tmp_path, capsys):
        root = tmp_path / "store"
        assert main([
            "store", str(root), "--scale", "300", "--instances", "4", "--partitions", "3",
        ]) == 0
        assert (root / "manifest.json").exists()

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestNewSubcommands:
    def test_run_reach(self, capsys):
        assert main([
            "run", "reach", "--scale", "400", "--instances", "5", "--partitions", "3",
        ]) == 0
        assert "reach on CARN" in capsys.readouterr().out

    def test_run_evolve(self, capsys):
        assert main([
            "run", "evolve", "--scale", "400", "--instances", "4",
            "--partitions", "3", "--graph", "WIKI",
        ]) == 0
        assert "communities per timestep" in capsys.readouterr().out

    def test_run_stats(self, capsys):
        assert main([
            "run", "stats", "--scale", "300", "--instances", "4", "--partitions", "3",
        ]) == 0
        assert "mean latency" in capsys.readouterr().out

    def test_run_with_rebalance_and_export(self, tmp_path, capsys):
        out = tmp_path / "summary.json"
        assert main([
            "run", "tdsp", "--scale", "400", "--instances", "5",
            "--partitions", "3", "--rebalance", "--export", str(out),
        ]) == 0
        text = capsys.readouterr().out
        assert "migrations applied" in text
        assert out.exists()

    def test_run_thread_executor(self, capsys):
        assert main([
            "run", "meme", "--scale", "300", "--instances", "4",
            "--partitions", "2", "--executor", "thread",
        ]) == 0

    def test_run_socket_executor(self, capsys):
        """Auto-spawn mode: no --hosts, workers forked on localhost TCP."""
        assert main([
            "run", "tdsp", "--scale", "300", "--instances", "4",
            "--partitions", "2", "--executor", "socket",
        ]) == 0


class TestWorkerSubcommand:
    def test_worker_serves_one_session(self, capsys):
        """``tibsp worker --once`` binds, announces, serves a run, exits."""
        import re
        import threading

        from repro.core import EngineConfig, run_application
        from repro.generators import road_latency_collection, road_network
        from repro.partition import partition_graph
        from repro.runtime import CollectionInstanceSource, serve_worker

        # One worker via the CLI entrypoint path, one via the library, so
        # the test covers both the argparse wiring and a 2-partition run.
        addrs: list[str] = []
        done = threading.Event()

        def cli_worker():
            main(["worker", "--listen", "127.0.0.1:0", "--once"])
            done.set()

        t1 = threading.Thread(target=cli_worker, daemon=True)
        t1.start()
        deadline_announce = threading.Event()

        def announce(bound):
            addrs.append(f"{bound[0]}:{bound[1]}")
            deadline_announce.set()

        t2 = threading.Thread(
            target=serve_worker, args=(("127.0.0.1", 0),),
            kwargs={"once": True, "announce": announce}, daemon=True,
        )
        t2.start()
        assert deadline_announce.wait(10)
        # The CLI worker prints its bound address to stdout; poll for it.
        import time as _time

        cli_addr = None
        for _ in range(100):
            m = re.search(
                r"tibsp worker listening on (\S+)", capsys.readouterr().out
            )
            if m:
                cli_addr = m.group(1)
                break
            _time.sleep(0.05)
        assert cli_addr, "worker CLI never announced its address"

        from repro.algorithms.tdsp import TDSPComputation
        tpl = road_network(300, seed=4)
        coll = road_latency_collection(tpl, 4, seed=4)
        pg = partition_graph(tpl, 2)
        sources = [CollectionInstanceSource(coll) for _ in range(2)]
        result = run_application(
            TDSPComputation(0), pg, coll, sources=sources,
            config=EngineConfig(executor="socket", hosts=(cli_addr, addrs[0])),
        )
        assert result.failure is None
        assert done.wait(10), "--once worker did not exit after the session"


class TestResilienceFlags:
    """Resilience knobs that cannot act must fail loudly, not silently no-op."""

    BASE = ["run", "tdsp", "--scale", "300", "--instances", "4", "--partitions", "2"]

    def test_fault_seed_without_inject_faults_errors(self, capsys):
        assert main(self.BASE + ["--fault-seed", "7"]) == 2
        err = capsys.readouterr().err
        assert "error:" in err and "--inject-faults" in err

    def test_gather_timeout_off_process_errors(self, capsys):
        assert main(self.BASE + ["--gather-timeout", "5"]) == 2
        err = capsys.readouterr().err
        assert "error:" in err and "process" in err

    def test_hosts_without_socket_executor_errors(self, capsys):
        assert main(self.BASE + ["--hosts", "127.0.0.1:9000,127.0.0.1:9001"]) == 2
        err = capsys.readouterr().err
        assert "error:" in err and "--executor socket" in err

    def test_recovery_flags_without_fault_source_warn(self, capsys):
        # Not fatal — but the user is told the policy can never act.
        assert main(self.BASE + ["--max-retries", "3"]) == 0
        assert "WARNING" in capsys.readouterr().err

    def test_fault_seed_with_inject_faults_accepted(self, tmp_path, capsys):
        assert main(self.BASE + [
            "--inject-faults", "kill@t1:p0", "--fault-seed", "7",
            "--checkpoint-every", "1", "--checkpoint-dir", str(tmp_path),
        ]) == 0
        captured = capsys.readouterr()
        assert "error:" not in captured.err
        assert "recovered from" in captured.out
        assert "recovery provenance: 1 surgical respawn(s)" in captured.out

    def test_failure_log_carries_recovery_provenance(self, tmp_path, capsys):
        import json

        log = tmp_path / "failures.json"
        assert main(self.BASE + [
            "--inject-faults", "kill@t1:p0",
            "--checkpoint-every", "1", "--checkpoint-dir", str(tmp_path / "ck"),
            "--failure-log", str(log),
        ]) == 0
        payload = json.loads(log.read_text())
        assert payload["failure"] is None
        assert payload["failure_log"] and payload["failure_log"][0]["action"] == "retry"
        assert payload["degraded_partitions"] == []
        kinds = [a["kind"] for a in payload["recovery_actions"]]
        assert kinds == ["worker_respawn"]
        assert payload["recovery_actions"][0]["incarnation"] == 1
        assert isinstance(payload["protocol_stats"], dict)

    def test_quarantine_run_reports_degraded(self, tmp_path, capsys):
        faults = "kill@t1:p0,kill@t1:p0:i1,kill@t1:p0:i2,kill@t1:p0:i3"
        assert main(self.BASE + [
            "--inject-faults", faults, "--max-retries", "2", "--quarantine",
            "--checkpoint-every", "1", "--checkpoint-dir", str(tmp_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "QUARANTINED PARTITIONS: [0]" in out


class TestTraceSubcommand:
    def test_trace_writes_three_artifacts(self, tmp_path, capsys):
        import json

        from repro.observability import read_event_log, validate_chrome_trace

        out = tmp_path / "trace-out"
        assert main([
            "trace", "tdsp", "--scale", "300", "--instances", "4",
            "--partitions", "3", "--out", str(out),
        ]) == 0
        text = capsys.readouterr().out
        assert "trace valid" in text
        trace = json.loads((out / "trace.json").read_text())
        assert validate_chrome_trace(trace) == []
        events = read_event_log(out / "events.jsonl")
        assert events and all("kind" in e and "ts_us" in e for e in events)
        manifest = json.loads((out / "manifest.json").read_text())
        assert manifest["algorithm"] == "tdsp"
        assert manifest["schema_version"] == 1
        assert "barrier_s" in manifest and "counters" in manifest
        assert "created_utc" in manifest and "metrics" in manifest

    def test_trace_serial_executor(self, tmp_path, capsys):
        out = tmp_path / "t"
        assert main([
            "trace", "meme", "--scale", "300", "--instances", "4",
            "--partitions", "2", "--graph", "WIKI",
            "--executor", "serial", "--out", str(out),
        ]) == 0
        assert (out / "trace.json").exists()

    def test_export_carries_provenance(self, tmp_path, capsys):
        import json

        out = tmp_path / "summary.json"
        assert main([
            "run", "tdsp", "--scale", "300", "--instances", "4",
            "--partitions", "3", "--export", str(out),
        ]) == 0
        payload = json.loads(out.read_text())
        prov = payload["provenance"]
        assert prov["schema_version"] == 1
        assert prov["algorithm"] == "tdsp" and prov["graph"] == "CARN"
        assert prov["executor"] == "serial"
        assert prov["scale"] == 300 and prov["seed"] == 0
        assert "created_utc" in prov and "git_describe" in prov


class TestLiveCLI:
    def test_run_with_live_metrics(self, capsys):
        assert main([
            "run", "tdsp", "--scale", "400", "--instances", "5",
            "--partitions", "3", "--live-metrics",
        ]) == 0
        out = capsys.readouterr().out
        assert "live telemetry:" in out

    def test_run_with_live_export(self, tmp_path, capsys):
        import json

        from repro.observability import read_snapshots, validate_live_snapshot

        live_dir = tmp_path / "live"
        assert main([
            "run", "tdsp", "--scale", "400", "--instances", "5",
            "--partitions", "3", "--executor", "process",
            "--live-export", str(live_dir), "--live-interval", "0",
        ]) == 0
        records = read_snapshots(live_dir / "live.jsonl")
        assert records
        assert all(validate_live_snapshot(r) == [] for r in records)
        prom = (live_dir / "live.prom").read_text()
        assert "tibsp_messages_total" in prom

    def test_top_once(self, tmp_path, capsys):
        live_dir = tmp_path / "live"
        assert main([
            "run", "tdsp", "--scale", "400", "--instances", "5",
            "--partitions", "3", "--live-export", str(live_dir),
        ]) == 0
        capsys.readouterr()
        assert main(["top", str(live_dir), "--once"]) == 0
        out = capsys.readouterr().out
        assert "tibsp top" in out and "progress" in out

    def test_top_once_empty(self, tmp_path, capsys):
        assert main(["top", str(tmp_path), "--once"]) == 1

    def test_trace_stream_and_report(self, tmp_path, capsys):
        import json

        out = tmp_path / "t"
        report = tmp_path / "cp.json"
        assert main([
            "trace", "tdsp", "--scale", "300", "--instances", "4",
            "--partitions", "3", "--out", str(out),
            "--stream", "--report", str(report),
        ]) == 0
        text = capsys.readouterr().out
        assert "critical path over" in text
        assert "trace valid" in text
        payload = json.loads(report.read_text())
        assert payload["timesteps"] and payload["partitions"]
        assert set(payload["totals"]) >= {"compute", "barrier", "load"}
