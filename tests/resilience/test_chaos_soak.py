"""Chaos soak: seeded multi-fault schedules on every executor.

ISSUE 8 satellite: a schedule mixing host death (``kill``), wire loss
(``drop_frame``), and stragglers (``slow_host``) must leave every executor
bit-identical to its own fault-free baseline, with a valid streamed event
log — the whole resilience stack exercised at once, deterministically.
"""

import json

import pytest

from repro.core import EngineConfig, run_application
from repro.observability import TraceConfig
from repro.resilience import CheckpointConfig, FaultPlan, RecoveryPolicy
from repro.runtime import CollectionInstanceSource

from .conftest import NUM_PARTITIONS, AccumulateSum, RingRelay

pytestmark = pytest.mark.resilience

#: Host death at t1, a vanished reply frame at t2, a straggler at t3 —
#: three failure classes in one run (wire faults are no-ops in-process,
#: so the schedule stays executor-portable).
CHAOS_PLAN = "kill@t1:s0:p1,drop_frame@t2:p0,slow_host@t3:p1:d0.02"

EXECUTORS = ["serial", "thread", "process", "socket"]


def _sources(coll):
    return [CollectionInstanceSource(coll) for _ in range(NUM_PARTITIONS)]


def _identical(a, b):
    assert a.outputs == b.outputs
    assert a.merge_outputs == b.merge_outputs
    assert a.states == b.states


def _chaos_config(executor, ckpt_dir, stream_dir):
    return EngineConfig(
        executor=executor,
        gather_timeout_s=0.5 if executor in ("process", "socket") else None,
        tracing=TraceConfig(stream_dir=str(stream_dir)),
        checkpoint=CheckpointConfig(dir=ckpt_dir, every=1),
        faults=FaultPlan.parse(CHAOS_PLAN, seed=13),
        recovery=RecoveryPolicy(backoff_s=0.0),
    )


@pytest.mark.parametrize("executor", EXECUTORS)
class TestChaosSoak:
    def test_bit_identical_with_valid_event_stream(self, case, tmp_path, executor):
        _tpl, coll, pg = case
        comp = RingRelay(len(pg.subgraphs))
        baseline = run_application(
            comp, pg, coll, sources=_sources(coll),
            config=EngineConfig(executor=executor),
        )
        stream = tmp_path / "stream"
        result = run_application(
            comp, pg, coll, sources=_sources(coll),
            config=_chaos_config(executor, tmp_path / "ck", stream),
        )
        _identical(result, baseline)
        assert result.failure is None
        assert result.degraded_partitions == []

        # The kill produced exactly one surgical respawn; the wire faults
        # never escalated to one.
        respawns = [a for a in result.recovery_actions if a.kind == "worker_respawn"]
        assert len(respawns) == 1 and respawns[0].partition == 1
        if executor in ("process", "socket"):
            assert result.protocol_stats["resends"] >= 1  # the dropped frame
            assert any(
                a.kind == "protocol_retry" for a in result.recovery_actions
            )

        # The streamed log survived the chaos as valid, schema-stamped JSONL.
        lines = (stream / "events.jsonl").read_text().splitlines()
        events = [json.loads(line) for line in lines if line.strip()]
        assert events == result.trace.event_records()
        assert all(e.get("schema") == 1 for e in events)
        kinds = {e["kind"] for e in events}
        assert "step" in kinds and "worker_respawn" in kinds

    def test_repeated_runs_identical(self, case, tmp_path, executor):
        """Soak determinism: the same seeded schedule, run twice, is
        indistinguishable — outputs, states, and recovery provenance."""
        _tpl, coll, pg = case
        runs = [
            run_application(
                AccumulateSum(), pg, coll, sources=_sources(coll),
                config=_chaos_config(executor, tmp_path / f"ck{i}", tmp_path / f"s{i}"),
            )
            for i in range(2)
        ]
        _identical(runs[0], runs[1])
        assert (
            [(a.kind, a.partition, a.timestep) for a in runs[0].recovery_actions]
            == [(a.kind, a.partition, a.timestep) for a in runs[1].recovery_actions]
        )
        assert (
            [(r.kind, r.action) for r in runs[0].failure_log]
            == [(r.kind, r.action) for r in runs[1].failure_log]
        )
