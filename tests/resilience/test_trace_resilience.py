"""Rollback-aware trace replay: purge rules, event coverage, crosscheck."""

import pytest

from repro.analysis import crosscheck_trace, purge_rolled_back_events, replay_timestep_walls
from repro.core import EngineConfig, run_application
from repro.resilience import CheckpointConfig, FaultPlan, RecoveryPolicy

from .conftest import AccumulateSum, RingRelay

pytestmark = pytest.mark.resilience


def _step(t, s, *, phase="compute", p=0, compute_s=1.0, send_s=0.0):
    return {
        "kind": "step", "phase": phase, "timestep": t, "superstep": s,
        "partition": p, "compute_s": compute_s, "send_s": send_s,
    }


def _restore(t, s=None, *, seconds=0.5, resumed=False):
    return {"kind": "restore", "timestep": t, "superstep": s,
            "seconds": seconds, "resumed": resumed}


class TestPurgeRules:
    def test_timestep_restore_drops_reexecuted_timestep(self):
        events = [_step(0, 0), _step(1, 0), _restore(1), _step(1, 0)]
        kept = purge_rolled_back_events(events)
        # The discarded attempt at t1 is gone; t0 and the re-run survive.
        steps = [e for e in kept if e["kind"] == "step"]
        assert [(e["timestep"],) for e in steps] == [(0,), (1,)]

    def test_superstep_restore_keeps_earlier_supersteps(self):
        events = [_step(2, 0), _step(2, 1), _step(2, 2), _restore(2, 2), _step(2, 2)]
        steps = [e for e in purge_rolled_back_events(events) if e["kind"] == "step"]
        assert [(e["timestep"], e["superstep"]) for e in steps] == [
            (2, 0), (2, 1), (2, 2)
        ]

    def test_merge_steps_always_purged(self):
        events = [_step(-1, 0, phase="merge"), _restore(0), _step(-1, 0, phase="merge")]
        merges = [
            e for e in purge_rolled_back_events(events)
            if e["kind"] == "step" and e["phase"] == "merge"
        ]
        assert len(merges) == 1

    def test_load_kept_at_t0_under_superstep_restore(self):
        load = {"kind": "instance_load", "timestep": 2, "partition": 0, "seconds": 0.1}
        assert load in purge_rolled_back_events([dict(load), _restore(2, 1)])
        assert not any(
            e["kind"] == "instance_load"
            for e in purge_rolled_back_events([dict(load), _restore(2, None)])
        )

    def test_checkpoint_cost_at_restore_point_purged(self):
        ck = {"kind": "checkpoint_write", "timestep": 2, "superstep": None,
              "nbytes": 10, "seconds": 0.0, "cost_s": 0.2}
        assert not any(
            e["kind"] == "checkpoint_write"
            for e in purge_rolled_back_events([dict(ck), _restore(2, None)])
        )
        # A checkpoint strictly before the restore point survives.
        assert ck in purge_rolled_back_events([dict(ck), _restore(3, None)])

    def test_resumed_restore_purges_nothing(self):
        events = [_step(1, 0), _restore(1, resumed=True)]
        assert purge_rolled_back_events(events) == events

    def test_earlier_recovery_superseded_by_rollback(self):
        first = _restore(2, seconds=0.3)
        events = [_step(1, 0), first, _step(2, 0), _restore(2, seconds=0.4)]
        kept = purge_rolled_back_events(events)
        restores = [e for e in kept if e["kind"] == "restore"]
        assert restores == [{**first, "seconds": 0.4}] or len(restores) == 1
        assert restores[0]["seconds"] == 0.4


class TestReplayWalls:
    def test_walls_charge_checkpoint_and_recovery(self):
        events = [
            _step(0, 0, compute_s=1.0),
            {"kind": "checkpoint_write", "timestep": 1, "superstep": None,
             "nbytes": 100, "seconds": 0.0, "cost_s": 0.25},
            _step(1, 0, compute_s=2.0),
            _step(2, 0, compute_s=2.0),
            _restore(2, seconds=0.5),
            _step(2, 0, compute_s=2.0),
        ]
        walls = replay_timestep_walls(events, 1)
        assert walls[0] == pytest.approx(1.0)
        # The t1 checkpoint survives the rollback to t2 and its modeled I/O
        # cost is charged; t2's wall carries the measured recovery time.
        assert walls[1] == pytest.approx(2.0 + 0.25)
        assert walls[2] == pytest.approx(2.0 + 0.5)


class TestTracedRecovery:
    def _traced(self, case, tmp_path, faults, **cfg_kwargs):
        _tpl, coll, pg = case
        cfg = EngineConfig(
            tracing=True,
            checkpoint=CheckpointConfig(dir=tmp_path, every=1),
            faults=FaultPlan.parse(faults, seed=9),
            recovery=RecoveryPolicy(backoff_s=0.0),
            **cfg_kwargs,
        )
        return run_application(AccumulateSum(), pg, coll, config=cfg)

    def test_recovery_events_present(self, case, tmp_path):
        result = self._traced(case, tmp_path, "kill@t2:p1")
        kinds = [e["kind"] for e in result.trace.event_records()]
        # Surgical mode (the default) repairs in place: the recovery is a
        # worker_respawn, not a cohort-rollback restore.
        for kind in ("checkpoint_write", "worker_lost", "retry", "worker_respawn"):
            assert kind in kinds, f"missing {kind} event"
        lost = next(e for e in result.trace.event_records() if e["kind"] == "worker_lost")
        assert lost["timestep"] == 2 and lost["attempt"] == 1

    def test_crosscheck_clean_under_rollback(self, case, tmp_path):
        result = self._traced(case, tmp_path, "kill@t2:p1")
        assert crosscheck_trace(result) == []

    def test_crosscheck_clean_superstep_rollback(self, case, tmp_path):
        _tpl, coll, pg = case
        cfg = EngineConfig(
            tracing=True,
            checkpoint=CheckpointConfig(dir=tmp_path, every=1, superstep_every=1),
            faults=FaultPlan.parse("kill@t2:s2:p1", seed=9),
            recovery=RecoveryPolicy(backoff_s=0.0),
        )
        result = run_application(RingRelay(len(pg.subgraphs)), pg, coll, config=cfg)
        assert crosscheck_trace(result) == []

    def test_recovery_time_visible_in_walls(self, case, tmp_path):
        result = self._traced(case, tmp_path, "kill@t2:p1")
        m = result.metrics
        walls = replay_timestep_walls(
            result.trace.event_records(), m.num_partitions, barrier_s=m.barrier_s
        )
        assert m.total_recovery_s() > 0
        # The wall for the recovered timestep carries the measured restore.
        assert walls[2] >= m.total_recovery_s()

    def test_crosscheck_rejects_resumed_run(self, case, tmp_path):
        _tpl, coll, pg = case
        with pytest.raises(Exception):
            run_application(
                AccumulateSum(), pg, coll,
                config=EngineConfig(
                    checkpoint=CheckpointConfig(dir=tmp_path, every=1),
                    faults=FaultPlan.parse("kill@t2:p1", seed=9),
                    recovery=RecoveryPolicy(max_retries=0, backoff_s=0.0),
                ),
            )
        resumed = run_application(
            AccumulateSum(), pg, coll,
            config=EngineConfig(
                tracing=True, checkpoint=CheckpointConfig(dir=tmp_path)
            ),
            resume_from=True,
        )
        with pytest.raises(ValueError, match="resumed run"):
            crosscheck_trace(resumed)
