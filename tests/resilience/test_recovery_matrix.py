"""The acceptance matrix: every seeded fault either recovers bit-identical
or surfaces as a structured RunFailure — across all three executors, with
no hangs and no leaked worker processes."""

import pytest

from repro.core import EngineConfig, run_application
from repro.resilience import (
    CheckpointConfig,
    FaultPlan,
    RecoveryPolicy,
    RunFailureError,
    WorkerCrash,
)

from .conftest import AccumulateSum, RingRelay

pytestmark = pytest.mark.resilience

#: One spec per fault kind, spread over coordinates (superstep, begin, eot).
FAULT_MATRIX = [
    "kill@t2:p1",
    "kill@t1:eot:p0",
    "delay@t1:s0:p0:d0.15",
    "drop@t2:p0",
    "corrupt@t1:p1",
    "fail_load@t2:begin:p0",
]


def _config(executor, ckpt_dir, faults, **recovery_kwargs):
    return EngineConfig(
        executor=executor,
        checkpoint=CheckpointConfig(dir=ckpt_dir, every=1),
        faults=FaultPlan.parse(faults, seed=3) if isinstance(faults, str) else faults,
        recovery=RecoveryPolicy(backoff_s=0.0, **recovery_kwargs),
    )


def _identical(a, b):
    assert a.outputs == b.outputs
    assert a.merge_outputs == b.merge_outputs
    assert a.states == b.states


class TestFaultMatrixProcess:
    """Process executor: real worker death, lost replies, corrupt streams."""

    @pytest.fixture(scope="class")
    def baseline(self, case):
        _tpl, coll, pg = case
        from repro.runtime import CollectionInstanceSource

        sources = [CollectionInstanceSource(coll) for _ in range(pg.num_partitions)]
        return run_application(
            AccumulateSum(), pg, coll, sources=sources, config=EngineConfig(executor="process")
        )

    @pytest.mark.parametrize("faults", FAULT_MATRIX)
    def test_recovers_bit_identical(self, case, sources, tmp_path, baseline, faults):
        _tpl, coll, pg = case
        result = run_application(
            AccumulateSum(), pg, coll, sources=sources,
            config=_config("process", tmp_path, faults),
        )
        _identical(result, baseline)
        if "delay" in faults:
            # A straggler under a generous gather timeout is slowness, not
            # a failure: no retry, no failure-log entry.
            assert result.metrics.retries == 0 and result.failure_log == []
        else:
            assert result.metrics.retries >= 1
            assert result.failure_log and result.failure_log[0].action == "retry"
            assert result.metrics.total_recovery_s() > 0
        assert result.failure is None

    def test_no_leaked_workers_after_recovery(self, case, sources, tmp_path):
        import multiprocessing as mp

        _tpl, coll, pg = case
        run_application(
            AccumulateSum(), pg, coll, sources=sources,
            config=_config("process", tmp_path, "kill@t1:p0"),
        )
        assert mp.active_children() == []


@pytest.mark.parametrize("executor", ["serial", "thread"])
class TestFaultMatrixInProcess:
    """In-process executors simulate kill/corrupt/drop as host crashes."""

    @pytest.mark.parametrize("faults", ["kill@t2:p1", "fail_load@t2:begin:p0"])
    def test_recovers_bit_identical(self, case, tmp_path, executor, faults):
        _tpl, coll, pg = case
        baseline = run_application(
            AccumulateSum(), pg, coll, config=EngineConfig(executor=executor)
        )
        result = run_application(
            AccumulateSum(), pg, coll, config=_config(executor, tmp_path, faults)
        )
        _identical(result, baseline)
        assert result.metrics.retries == 1

    def test_multi_superstep_with_merge(self, case, tmp_path, executor):
        """Rollback mid-BSP with in-flight frames and a merge phase."""
        _tpl, coll, pg = case
        comp = RingRelay(len(pg.subgraphs))
        baseline = run_application(comp, pg, coll, config=EngineConfig(executor=executor))
        cfg = EngineConfig(
            executor=executor,
            checkpoint=CheckpointConfig(dir=tmp_path, every=1, superstep_every=2),
            # The second spec targets incarnation 1: the first recovery
            # respawns p1's worker surgically (only *its* incarnation is
            # bumped), and i0 faults never refire after that.
            faults=FaultPlan.parse("kill@t2:s2:p1,kill@t3:eot:p1:i1", seed=5),
            recovery=RecoveryPolicy(backoff_s=0.0),
        )
        result = run_application(comp, pg, coll, config=cfg)
        _identical(result, baseline)
        assert result.metrics.retries == 2


class TestExhaustedRetries:
    """A fault re-armed for every incarnation defeats the retry budget."""

    PERSISTENT = "kill@t1:p0,kill@t1:p0:i1,kill@t1:p0:i2,kill@t1:p0:i3"

    def test_raise_mode_carries_partial(self, case, tmp_path):
        _tpl, coll, pg = case
        cfg = _config("serial", tmp_path, self.PERSISTENT, max_retries=2)
        with pytest.raises(RunFailureError) as excinfo:
            run_application(AccumulateSum(), pg, coll, config=cfg)
        failure = excinfo.value.failure
        assert failure.timestep == 1
        assert "WorkerCrash" in failure.reason
        # 1 initial incident + 2 retries, each logged; the last marked raise.
        assert [r.action for r in failure.failure_log] == ["retry", "retry", "raise"]
        partial = excinfo.value.partial
        assert partial is not None and partial.timesteps_executed == 1

    def test_degrade_mode_returns_partial(self, case, sources, tmp_path):
        _tpl, coll, pg = case
        cfg = _config(
            "process", tmp_path, self.PERSISTENT, max_retries=2, on_exhausted="degrade"
        )
        result = run_application(AccumulateSum(), pg, coll, sources=sources, config=cfg)
        assert result.failure is not None
        assert result.failure.timestep == 1
        assert result.timesteps_executed == 1
        assert len(result.failure_log) == 3
        # The recovered prefix is intact: timestep 0's outputs survived.
        assert all(t == 0 for t, _sg, _rec in result.outputs)

    def test_app_errors_are_not_retried(self, case, tmp_path):
        """Deterministic computation bugs must surface, not burn retries."""
        from repro.core import Pattern, TimeSeriesComputation

        class Boom(TimeSeriesComputation):
            pattern = Pattern.SEQUENTIALLY_DEPENDENT

            def compute(self, ctx):
                if ctx.timestep == 1:
                    raise ValueError("app bug")
                ctx.vote_to_halt()

        _tpl, coll, pg = case
        cfg = _config("serial", tmp_path, None)
        with pytest.raises(ValueError, match="app bug"):
            run_application(Boom(), pg, coll, config=cfg)


class TestResume:
    def test_crash_then_resume_bit_identical(self, case, tmp_path):
        _tpl, coll, pg = case
        baseline = run_application(AccumulateSum(), pg, coll)
        with pytest.raises(RunFailureError):
            run_application(
                AccumulateSum(), pg, coll,
                config=_config("serial", tmp_path, "kill@t2:p0", max_retries=0),
            )
        resumed = run_application(
            AccumulateSum(), pg, coll,
            config=EngineConfig(checkpoint=CheckpointConfig(dir=tmp_path)),
            resume_from=True,
        )
        _identical(resumed, baseline)
        assert resumed.timesteps_executed == baseline.timesteps_executed

    def test_resume_by_name_and_signature_check(self, case, tmp_path):
        _tpl, coll, pg = case
        cfg = EngineConfig(checkpoint=CheckpointConfig(dir=tmp_path, every=1, retain=10))
        run_application(AccumulateSum(), pg, coll, config=cfg)
        comp = RingRelay(len(pg.subgraphs))
        with pytest.raises(ValueError, match="does not match this run"):
            run_application(comp, pg, coll, config=cfg, resume_from=True)

    def test_resume_requires_checkpoint_config(self, case):
        _tpl, coll, pg = case
        with pytest.raises(ValueError, match="resume_from requires"):
            run_application(AccumulateSum(), pg, coll, resume_from=True)

    def test_rebalancer_excluded(self, case):
        from repro.runtime import GreedyRebalancer

        _tpl, coll, pg = case
        cfg = EngineConfig(
            rebalancer=GreedyRebalancer(),
            faults=FaultPlan([]),
        )
        with pytest.raises(ValueError, match="rebalancing is incompatible"):
            run_application(AccumulateSum(), pg, coll, config=cfg)


class TestRecoveryWithoutCheckpoints:
    def test_genesis_rollback_replays_from_start(self, case, tmp_path):
        """Faults + recovery but no checkpoint config: replay from genesis."""
        _tpl, coll, pg = case
        baseline = run_application(AccumulateSum(), pg, coll)
        cfg = EngineConfig(
            faults=FaultPlan.parse("kill@t2:p1", seed=1),
            recovery=RecoveryPolicy(backoff_s=0.0),
        )
        result = run_application(AccumulateSum(), pg, coll, config=cfg)
        _identical(result, baseline)
        assert result.metrics.retries == 1

    def test_injected_fault_types(self, case):
        plan = FaultPlan([])
        assert isinstance(WorkerCrash("x", partition=1).partition, int)
        assert not plan
