"""Unit tests for the checkpoint store: integrity, retention, recovery policy."""

import json

import pytest

from repro.resilience import (
    CheckpointConfig,
    CheckpointCorrupt,
    CheckpointManager,
    FailureRecord,
    RecoveryPolicy,
    RunFailure,
)


def _write(mgr, t, driver=None, parts=None, superstep=None):
    return mgr.write(
        t,
        driver if driver is not None else {"next_t": t},
        parts if parts is not None else [{"p": 0}, {"p": 1}],
        superstep=superstep,
        signature={"pattern": "TEST"},
    )


class TestRoundTrip:
    def test_write_then_load(self, tmp_path):
        mgr = CheckpointManager(tmp_path)
        info = _write(mgr, 3, driver={"next_t": 3, "x": [1, 2]})
        assert info.path.name == "ckpt-000000-t3"
        assert info.nbytes > 0 and info.seconds >= 0
        loaded = mgr.load()
        assert loaded.timestep == 3 and loaded.superstep is None
        assert loaded.driver == {"next_t": 3, "x": [1, 2]}
        assert loaded.parts == [{"p": 0}, {"p": 1}]
        assert loaded.meta["signature"] == {"pattern": "TEST"}

    def test_superstep_checkpoint_named_and_typed(self, tmp_path):
        mgr = CheckpointManager(tmp_path)
        info = _write(mgr, 2, superstep=5)
        assert info.path.name.endswith("-t2s5")
        assert mgr.load().superstep == 5

    def test_load_by_name(self, tmp_path):
        mgr = CheckpointManager(tmp_path, retain=5)
        first = _write(mgr, 1)
        _write(mgr, 2)
        assert mgr.load(first.path.name).timestep == 1

    def test_no_checkpoint_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            CheckpointManager(tmp_path / "empty").load()

    def test_seq_resumes_after_reopen(self, tmp_path):
        _write(CheckpointManager(tmp_path), 1)
        info = _write(CheckpointManager(tmp_path), 2)
        assert info.seq == 1


class TestIntegrity:
    def test_tampered_blob_detected(self, tmp_path):
        mgr = CheckpointManager(tmp_path)
        info = _write(mgr, 1)
        blob = info.path / "part-1.bin"
        blob.write_bytes(b"\x00" + blob.read_bytes()[1:])
        with pytest.raises(CheckpointCorrupt, match="failed validation"):
            mgr.load()

    def test_missing_blob_detected(self, tmp_path):
        mgr = CheckpointManager(tmp_path)
        info = _write(mgr, 1)
        (info.path / "driver.bin").unlink()
        with pytest.raises(CheckpointCorrupt):
            mgr.load()

    def test_future_format_version_rejected(self, tmp_path):
        mgr = CheckpointManager(tmp_path)
        info = _write(mgr, 1)
        manifest = json.loads((info.path / "manifest.json").read_text())
        manifest["format_version"] = 999
        (info.path / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(CheckpointCorrupt, match="format version"):
            mgr.load()

    def test_manifestless_dir_is_not_a_checkpoint(self, tmp_path):
        mgr = CheckpointManager(tmp_path)
        _write(mgr, 1)
        torn = tmp_path / "ckpt-000009-t9"
        torn.mkdir()
        (torn / "driver.bin").write_bytes(b"partial")
        # LATEST still points at the complete one; the torn dir is invisible.
        assert mgr.latest_name() == "ckpt-000000-t1"

    def test_latest_fallback_scan(self, tmp_path):
        mgr = CheckpointManager(tmp_path, retain=5)
        _write(mgr, 1)
        _write(mgr, 2)
        (tmp_path / "LATEST").unlink()
        assert CheckpointManager(tmp_path).latest_name() == "ckpt-000001-t2"


class TestRetention:
    def test_prunes_beyond_retain(self, tmp_path):
        mgr = CheckpointManager(tmp_path, retain=2)
        for t in range(5):
            _write(mgr, t)
        names = sorted(p.name for p in tmp_path.iterdir() if p.is_dir())
        assert names == ["ckpt-000003-t3", "ckpt-000004-t4"]
        assert mgr.load().timestep == 4


class TestConfigAndRecords:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            CheckpointConfig(every=0)
        with pytest.raises(ValueError):
            CheckpointConfig(superstep_every=0)
        with pytest.raises(ValueError):
            CheckpointConfig(retain=0)

    def test_recovery_policy_validation_and_backoff(self):
        with pytest.raises(ValueError):
            RecoveryPolicy(on_exhausted="panic")
        p = RecoveryPolicy(backoff_s=0.1, backoff_factor=3.0)
        assert p.backoff_for(1) == pytest.approx(0.1)
        assert p.backoff_for(3) == pytest.approx(0.9)

    def test_failure_record_and_run_failure_as_dict(self):
        rec = FailureRecord("WorkerLost", 3, -1, 1, 1, "boom", "retry")
        failure = RunFailure("WorkerLost: boom", 3, [rec])
        d = failure.as_dict()
        assert d["reason"] == "WorkerLost: boom"
        assert d["timestep"] == 3
        assert d["failures"][0]["kind"] == "WorkerLost"
        assert d["failures"][0]["action"] == "retry"
