"""Unit tests for the fault plan and its CLI mini-language."""

import pickle

import pytest

from repro.resilience import (
    AT_BEGIN,
    AT_EOT,
    FaultPlan,
    FaultSpec,
    parse_fault_specs,
)


class TestParse:
    def test_full_grammar(self):
        specs = parse_fault_specs(
            "kill@t1:s0:p0, delay@t2:p1:d0.2; fail_load@t3:begin:p0:i1,corrupt@t1:eot:p2"
        )
        assert specs == [
            FaultSpec("kill", 1, 0, superstep=0),
            FaultSpec("delay", 2, 1, delay_s=0.2),
            FaultSpec("fail_load", 3, 0, superstep=AT_BEGIN, incarnation=1),
            FaultSpec("corrupt", 1, 2, superstep=AT_EOT),
        ]

    def test_superstep_optional(self):
        (spec,) = parse_fault_specs("drop@t4:p2")
        assert spec.superstep is None
        assert spec.matches(4, 0, 2, 0) and spec.matches(4, 17, 2, 0)

    @pytest.mark.parametrize(
        "bad",
        ["", "kill", "kill@p0", "kill@t1", "zap@t1:p0", "kill@t1:x9:p0"],
    )
    def test_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            parse_fault_specs(bad)


class TestFire:
    def test_spec_fires_once(self):
        plan = FaultPlan([FaultSpec("kill", 1, 0, superstep=0)])
        assert plan.fire(1, 0, 0, 0) is not None
        assert plan.fire(1, 0, 0, 0) is None

    def test_incarnation_guard(self):
        plan = FaultPlan([FaultSpec("kill", 1, 0)])
        assert plan.fire(1, 0, 0, incarnation=1) is None
        assert plan.fire(1, 0, 0, incarnation=0) is not None

    def test_kind_filter(self):
        plan = FaultPlan([FaultSpec("delay", 1, 0)])
        assert plan.fire(1, 0, 0, 0, kinds=("kill",)) is None
        assert plan.fire(1, 0, 0, 0, kinds=("delay",)) is not None

    def test_pickle_resets_spent(self):
        plan = FaultPlan([FaultSpec("kill", 1, 0)])
        assert plan.fire(1, 0, 0, 0) is not None
        fresh = pickle.loads(pickle.dumps(plan))
        assert fresh.fire(1, 0, 0, 0) is not None

    def test_bool(self):
        assert not FaultPlan()
        assert FaultPlan([FaultSpec("kill", 0, 0)])


class TestDelay:
    def test_explicit_delay_honored(self):
        plan = FaultPlan([FaultSpec("delay", 1, 0, delay_s=0.25)])
        assert plan.delay_for(plan.specs[0]) == 0.25

    def test_derived_delay_deterministic(self):
        a = FaultPlan([FaultSpec("delay", 1, 0)], seed=7)
        b = FaultPlan([FaultSpec("delay", 1, 0)], seed=7)
        c = FaultPlan([FaultSpec("delay", 1, 0)], seed=8)
        assert a.delay_for(a.specs[0]) == b.delay_for(b.specs[0])
        assert a.delay_for(a.specs[0]) != c.delay_for(c.specs[0])
        assert a.delay_for(a.specs[0]) > 0

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec("explode", 0, 0)
