"""Live telemetry + streaming event log under faults, prefetch, and rollback."""

import json

import pytest

from repro.analysis import crosscheck_critical_path, crosscheck_trace
from repro.core import EngineConfig, run_application
from repro.observability import LiveConfig, TraceConfig
from repro.resilience import (
    CheckpointConfig,
    FaultPlan,
    RecoveryPolicy,
    RunFailureError,
)
from repro.storage import GoFS

from .conftest import AccumulateSum

pytestmark = pytest.mark.resilience


@pytest.fixture(scope="module")
def gofs_root(case, tmp_path_factory):
    _tpl, coll, pg = case
    root = tmp_path_factory.mktemp("gofs-live")
    GoFS.write_collection(root, pg, coll, packing=2, binning=3)
    return root


def _live_config(**overrides):
    defaults = dict(interval_s=0.0, heartbeat_s=None)
    defaults.update(overrides)
    return LiveConfig(**defaults)


class TestCrosscheckWithPrefetchRecovery:
    """The event log stays replayable when prefetch, faults and rollback mix.

    A purge bug that keeps a rolled-back attempt's instance_load — or
    forgets the hidden (prefetch-overlapped) portion — now fails the
    blocked/hidden load totals check inside ``crosscheck_trace``, even when
    the error cancels out of the per-timestep wall arithmetic.
    """

    @pytest.mark.parametrize("prefetch", [False, True])
    def test_trace_replays_clean(self, case, gofs_root, tmp_path, prefetch):
        _tpl, coll, pg = case
        sources = GoFS.partition_views(gofs_root, prefetch=prefetch, cache_packs=2)
        result = run_application(
            AccumulateSum(), pg, coll, sources=sources,
            config=EngineConfig(
                tracing=True,
                checkpoint=CheckpointConfig(dir=tmp_path, every=1),
                faults=FaultPlan.parse("kill@t2:p1", seed=3),
                recovery=RecoveryPolicy(backoff_s=0.0),
            ),
        )
        assert result.metrics.retries >= 1
        if prefetch:
            assert result.metrics.total_load_hidden_s() >= 0.0
        assert crosscheck_trace(result) == []
        assert crosscheck_critical_path(result) == []

    def test_hidden_load_mismatch_detected(self, case, gofs_root, tmp_path):
        """Corrupting one hidden_s value trips the new totals check."""
        _tpl, coll, pg = case
        sources = GoFS.partition_views(gofs_root, prefetch=True, cache_packs=2)
        result = run_application(
            AccumulateSum(), pg, coll, sources=sources,
            config=EngineConfig(tracing=True),
        )
        # Corrupt the raw record (event_records() normalizes fresh copies).
        loads = [e for e in result.trace.events if e.get("kind") == "instance_load"]
        assert loads, "expected instance_load events"
        loads[0]["hidden_s"] = loads[0].get("hidden_s", 0.0) + 1.0
        problems = crosscheck_trace(result)
        assert any("hidden load" in p for p in problems)


class TestLiveThroughRecovery:
    def test_summary_exact_after_rollback(self, case, tmp_path):
        _tpl, coll, pg = case
        result = run_application(
            AccumulateSum(), pg, coll,
            config=EngineConfig(
                live=_live_config(),
                checkpoint=CheckpointConfig(dir=tmp_path, every=1),
                faults=FaultPlan.parse("kill@t2:p1", seed=3),
                recovery=RecoveryPolicy(backoff_s=0.0),
            ),
        )
        assert result.metrics.retries >= 1
        # The mirror tracked the surgical repair exactly as the run's own
        # collector did: still byte-for-byte equal at the end.
        assert result.live.summary() == result.metrics.summary()
        kinds = [e.kind for e in result.health_events]
        assert "respawn" in kinds
        # Health findings became structured early warnings for the policy.
        assert [w.kind for w in result.early_warnings] == kinds
        respawn = next(w for w in result.early_warnings if w.kind == "respawn")
        assert respawn.threshold_s is None
        assert respawn.as_dict()["kind"] == "respawn"

    def test_stall_threshold_from_recovery_policy(self, case):
        _tpl, coll, pg = case
        result = run_application(
            AccumulateSum(), pg, coll,
            config=EngineConfig(
                live=_live_config(),
                recovery=RecoveryPolicy(backoff_s=0.0, stall_warning_s=7.5),
            ),
        )
        assert result.live.config.stall_after_s == 7.5

    def test_stall_warning_must_be_positive(self):
        with pytest.raises(ValueError, match="stall_warning_s"):
            RecoveryPolicy(stall_warning_s=0.0)


class TestStreamedEventLog:
    def _read_events(self, path):
        lines = path.read_text().splitlines()
        return [json.loads(line) for line in lines if line.strip()]

    def test_streamed_log_matches_trace(self, case, tmp_path):
        _tpl, coll, pg = case
        out = tmp_path / "stream"
        result = run_application(
            AccumulateSum(), pg, coll,
            config=EngineConfig(tracing=TraceConfig(stream_dir=str(out))),
        )
        streamed = self._read_events(out / "events.jsonl")
        assert streamed == result.trace.event_records()
        stamps = [e["ts_us"] for e in streamed]
        assert stamps == sorted(stamps)

    def test_abnormal_exit_leaves_valid_jsonl(self, case, tmp_path):
        """A run that dies mid-flight still flushes a parseable event log."""
        _tpl, coll, pg = case
        out = tmp_path / "stream"
        with pytest.raises(RunFailureError):
            run_application(
                AccumulateSum(), pg, coll,
                config=EngineConfig(
                    tracing=TraceConfig(stream_dir=str(out)),
                    checkpoint=CheckpointConfig(dir=tmp_path / "ck", every=1),
                    faults=FaultPlan.parse("kill@t2:p0", seed=3),
                    recovery=RecoveryPolicy(backoff_s=0.0, max_retries=0),
                ),
            )
        events = self._read_events(out / "events.jsonl")
        assert events, "abnormal exit left no events behind"
        # Every line is complete JSON with the schema envelope, and the work
        # before the crash (t0/t1 steps + the fault evidence) is present.
        assert all(e.get("schema") == 1 for e in events)
        kinds = {e["kind"] for e in events}
        assert "step" in kinds and "worker_lost" in kinds
        assert {e["timestep"] for e in events if e["kind"] == "step"} >= {0, 1}
