"""Network-fault grammar + the sequence-numbered wire protocol that cures it.

ISSUE 8 acceptance: each network fault is deterministic under a fixed
seed, ``dup_frame`` produces zero duplicate deliveries into the engine
(the driver's dedup counters prove it), and results stay bit-identical
to a fault-free run — the protocol cures the wire without redoing work.
"""

import pytest

from repro.core import EngineConfig, run_application
from repro.resilience import (
    AT_EOT,
    NETWORK_FAULT_KINDS,
    FaultPlan,
    RecoveryPolicy,
    parse_fault_specs,
)
from repro.runtime import CollectionInstanceSource

from .conftest import NUM_PARTITIONS, AccumulateSum

pytestmark = pytest.mark.resilience


def _sources(coll):
    return [CollectionInstanceSource(coll) for _ in range(NUM_PARTITIONS)]


def _config(faults, *, executor="process", seed=7, timeout=0.5):
    return EngineConfig(
        executor=executor,
        gather_timeout_s=timeout if executor == "process" else None,
        faults=FaultPlan.parse(faults, seed=seed),
        recovery=RecoveryPolicy(backoff_s=0.0),
    )


def _identical(a, b):
    assert a.outputs == b.outputs
    assert a.merge_outputs == b.merge_outputs
    assert a.states == b.states


class TestGrammar:
    @pytest.mark.parametrize("kind", NETWORK_FAULT_KINDS)
    def test_parses_every_network_kind(self, kind):
        (spec,) = parse_fault_specs(f"{kind}@t2:s1:p0")
        assert spec.kind == kind
        assert (spec.timestep, spec.superstep, spec.partition) == (2, 1, 0)
        assert spec.incarnation == 0

    def test_full_token_set(self):
        (spec,) = parse_fault_specs("slow_host@t3:eot:p1:d0.25:i2")
        assert spec.kind == "slow_host"
        assert spec.superstep == AT_EOT
        assert spec.delay_s == 0.25
        assert spec.incarnation == 2

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            parse_fault_specs("drop_packet@t1:p0")

    def test_seeded_delay_is_deterministic(self):
        plan_a = FaultPlan.parse("slow_host@t1:p0", seed=7)
        plan_b = FaultPlan.parse("slow_host@t1:p0", seed=7)
        assert plan_a.delay_for(plan_a.specs[0]) == plan_b.delay_for(plan_b.specs[0])
        plan_c = FaultPlan.parse("slow_host@t1:p0", seed=8)
        assert plan_a.delay_for(plan_a.specs[0]) != plan_c.delay_for(plan_c.specs[0])


class TestWireProtocol:
    """Process executor: real pipes, real misbehavior, idempotent cures."""

    @pytest.fixture(scope="class")
    def baseline(self, case):
        _tpl, coll, pg = case
        return run_application(
            AccumulateSum(), pg, coll, sources=_sources(coll),
            config=EngineConfig(executor="process"),
        )

    def test_dup_frame_zero_duplicate_deliveries(self, case, baseline):
        _tpl, coll, pg = case
        result = run_application(
            AccumulateSum(), pg, coll, sources=_sources(coll),
            config=_config("dup_frame@t1:p0"),
        )
        _identical(result, baseline)
        # The duplicate frame was dropped at the driver by sequence number:
        # exactly-once delivery into the engine, no retry, no failure.
        assert result.protocol_stats["duplicate_replies_dropped"] >= 1
        assert result.protocol_stats["resends"] == 0
        assert result.failure_log == []
        assert result.recovery_actions == []

    def test_reorder_skips_stale_frame(self, case, baseline):
        _tpl, coll, pg = case
        result = run_application(
            AccumulateSum(), pg, coll, sources=_sources(coll),
            config=_config("reorder@t2:p1"),
        )
        _identical(result, baseline)
        assert result.protocol_stats["duplicate_replies_dropped"] >= 1
        assert result.protocol_stats["resends"] == 0
        assert result.failure_log == []

    def test_drop_frame_cured_by_resend(self, case, baseline):
        _tpl, coll, pg = case
        result = run_application(
            AccumulateSum(), pg, coll, sources=_sources(coll),
            config=_config("drop_frame@t1:p0"),
        )
        _identical(result, baseline)
        # The gather timed out, the driver resent, the worker answered from
        # its reply cache — a cured incident, not a respawn.
        assert result.protocol_stats["resends"] >= 1
        assert result.protocol_stats["protocol_retries"] >= 1
        assert result.failure_log and result.failure_log[0].action == "retry"
        assert result.failure_log[0].kind == "GatherTimeout"
        kinds = [a.kind for a in result.recovery_actions]
        assert "protocol_retry" in kinds and "worker_respawn" not in kinds

    def test_corrupt_frame_cured_by_resend(self, case, baseline):
        _tpl, coll, pg = case
        result = run_application(
            AccumulateSum(), pg, coll, sources=_sources(coll),
            config=_config("corrupt_frame@t2:p1"),
        )
        _identical(result, baseline)
        assert result.protocol_stats["resends"] >= 1
        assert result.failure_log and result.failure_log[0].action == "retry"
        assert result.failure_log[0].kind == "WorkerError"
        assert [a.kind for a in result.recovery_actions] == ["protocol_retry"]
        assert result.recovery_actions[0].partition == 1

    def test_slow_host_is_slowness_not_failure(self, case, baseline):
        _tpl, coll, pg = case
        result = run_application(
            AccumulateSum(), pg, coll, sources=_sources(coll),
            config=_config("slow_host@t1:p0:d0.05"),
        )
        _identical(result, baseline)
        assert result.protocol_stats["resends"] == 0
        assert result.failure_log == []
        assert result.recovery_actions == []

    def test_same_seed_same_run(self, case):
        """The whole fault schedule is deterministic under a fixed seed."""
        _tpl, coll, pg = case
        runs = [
            run_application(
                AccumulateSum(), pg, coll, sources=_sources(coll),
                config=_config("dup_frame@t1:p0,drop_frame@t2:p1", seed=11),
            )
            for _ in range(2)
        ]
        _identical(runs[0], runs[1])
        assert (
            [r.kind for r in runs[0].failure_log]
            == [r.kind for r in runs[1].failure_log]
        )
        assert (
            [a.kind for a in runs[0].recovery_actions]
            == [a.kind for a in runs[1].recovery_actions]
        )


class TestExecutorPortability:
    """The same plan is legal on wire-less executors: every kind but
    slow_host is a deterministic no-op there, and the specs still spend."""

    @pytest.mark.parametrize("executor", ["serial", "thread"])
    def test_plan_runs_clean_in_process(self, case, executor):
        _tpl, coll, pg = case
        baseline = run_application(
            AccumulateSum(), pg, coll,
            config=EngineConfig(executor=executor),
        )
        plan = "dup_frame@t1:p0,reorder@t1:p1,drop_frame@t2:p0,corrupt_frame@t2:p1,slow_host@t3:p0:d0.01"
        result = run_application(
            AccumulateSum(), pg, coll,
            config=_config(plan, executor=executor),
        )
        _identical(result, baseline)
        assert result.failure is None
        assert result.failure_log == []
        assert result.recovery_actions == []
