"""Surgical recovery: one worker respawns while the cohort holds at the barrier."""

import pytest

from repro.core import EngineConfig, run_application
from repro.resilience import (
    CheckpointConfig,
    FaultPlan,
    FrameJournal,
    RecoveryAction,
    RecoveryPolicy,
)
from repro.runtime import CollectionInstanceSource

from .conftest import NUM_PARTITIONS, AccumulateSum, RingRelay

pytestmark = pytest.mark.resilience

EXECUTORS = ["serial", "thread", "process"]


def _sources(coll):
    return [CollectionInstanceSource(coll) for _ in range(NUM_PARTITIONS)]


def _config(executor, ckpt_dir, faults, *, tracing=False, **recovery_kwargs):
    recovery_kwargs.setdefault("mode", "surgical")
    return EngineConfig(
        executor=executor,
        tracing=tracing,
        checkpoint=CheckpointConfig(dir=ckpt_dir, every=1),
        faults=FaultPlan.parse(faults, seed=3) if isinstance(faults, str) else faults,
        recovery=RecoveryPolicy(backoff_s=0.0, **recovery_kwargs),
    )


def _identical(a, b):
    assert a.outputs == b.outputs
    assert a.merge_outputs == b.merge_outputs
    assert a.states == b.states


class TestSurgicalSingleKill:
    """ISSUE 8 acceptance: a seeded single-host kill respawns exactly one
    worker — the survivors hold at the barrier, nothing else rolls back."""

    @pytest.fixture(scope="class")
    def baselines(self, case):
        _tpl, coll, pg = case
        return {
            ex: run_application(
                AccumulateSum(), pg, coll, sources=_sources(coll),
                config=EngineConfig(executor=ex),
            )
            for ex in EXECUTORS
        }

    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_exactly_one_respawn(self, case, tmp_path, baselines, executor):
        _tpl, coll, pg = case
        result = run_application(
            AccumulateSum(), pg, coll, sources=_sources(coll),
            config=_config(executor, tmp_path, "kill@t2:p1", tracing=True),
        )
        _identical(result, baselines[executor])
        assert result.failure is None
        assert result.degraded_partitions == []

        # Provenance: exactly one surgical respawn, for the killed partition,
        # at the first post-genesis incarnation.
        respawns = [a for a in result.recovery_actions if a.kind == "worker_respawn"]
        assert len(respawns) == 1
        action = respawns[0]
        assert action.partition == 1
        assert action.timestep == 2
        assert action.incarnation == 1
        assert action.attempt == 1
        assert action.seconds > 0
        assert action.as_dict()["kind"] == "worker_respawn"

        # Trace: one worker_respawn event, N-1 survivors held at the barrier.
        events = [
            e for e in result.trace.event_records() if e["kind"] == "worker_respawn"
        ]
        assert len(events) == 1
        assert events[0]["survivors"] == NUM_PARTITIONS - 1
        assert events[0]["partition"] == 1
        assert events[0]["incarnation"] == 1

        if executor == "process":
            # The hardened wire protocol kept count of its traffic.
            assert result.protocol_stats["commands_sent"] > 0
            assert result.protocol_stats["resends"] == 0

    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_bit_identical_across_executors(self, case, tmp_path, baselines, executor):
        """The same fault plan recovers byte-identical on every executor,
        and all executors agree with each other (baselines already do)."""
        _tpl, coll, pg = case
        num_sg = len(pg.subgraphs)
        base = run_application(
            RingRelay(num_sg), pg, coll, sources=_sources(coll),
            config=EngineConfig(executor=executor),
        )
        result = run_application(
            RingRelay(num_sg), pg, coll, sources=_sources(coll),
            config=_config(executor, tmp_path, "kill@t1:s1:p0"),
        )
        _identical(result, base)
        assert [a.kind for a in result.recovery_actions] == ["worker_respawn"]
        assert result.recovery_actions[0].partition == 0

    def test_replay_counts_reflect_journal(self, case, tmp_path):
        """A kill at the end-of-timestep round replays the rounds journaled
        since the last checkpoint (begin + supersteps of that timestep)."""
        _tpl, coll, pg = case
        result = run_application(
            AccumulateSum(), pg, coll, sources=_sources(coll),
            config=_config("serial", tmp_path, "kill@t2:eot:p0"),
        )
        assert result.failure is None
        action = result.recovery_actions[0]
        # Checkpoint every=1 truncates at each boundary: the journal holds
        # t2's begin + its single superstep before the eot round fails.
        assert action.replayed_rounds == 2


class TestQuarantine:
    """Graceful exhaustion: the run completes degraded instead of dying."""

    def test_persistent_kill_quarantines(self, case, tmp_path):
        _tpl, coll, pg = case
        faults = "kill@t1:p0,kill@t1:p0:i1,kill@t1:p0:i2,kill@t1:p0:i3"
        result = run_application(
            AccumulateSum(), pg, coll, sources=_sources(coll),
            config=_config(
                "serial", tmp_path, faults, tracing=True,
                max_retries=2, quarantine=True,
            ),
        )
        # The run completed; partition 0 is gone, partition 1's work stands.
        assert result.failure is None
        assert result.degraded_partitions == [0]
        kinds = [a.kind for a in result.recovery_actions]
        assert kinds.count("quarantine") == 1
        assert result.recovery_actions[-1].kind == "quarantine"
        # The retry budget was burned first: retry, retry, quarantine.
        assert [r.action for r in result.failure_log] == [
            "retry", "retry", "quarantine"
        ]
        event_kinds = {e["kind"] for e in result.trace.event_records()}
        assert "worker_quarantined" in event_kinds

    def test_deliveries_to_quarantined_are_dropped_and_counted(self, case, tmp_path):
        """Cross-partition frames addressed to a dead partition are dropped
        at the driver and counted, not silently lost.  (AccumulateSum's
        temporal sends are host-local and never reach the driver, so this
        needs RingRelay's cross-partition ring.)"""
        _tpl, coll, pg = case
        faults = "kill@t1:p0,kill@t1:p0:i1,kill@t1:p0:i2,kill@t1:p0:i3"
        result = run_application(
            RingRelay(len(pg.subgraphs)), pg, coll, sources=_sources(coll),
            config=_config(
                "serial", tmp_path, faults, tracing=True,
                max_retries=2, quarantine=True,
            ),
        )
        assert result.failure is None
        assert result.degraded_partitions == [0]
        assert result.protocol_stats["dropped_to_quarantined"] > 0
        dropped = [
            e for e in result.trace.event_records() if e["kind"] == "frames_dropped"
        ]
        assert dropped and all(e["partition"] == 0 for e in dropped)
        assert sum(e["messages"] for e in dropped) == (
            result.protocol_stats["dropped_to_quarantined"]
        )

    def test_quarantine_off_raises(self, case, tmp_path):
        from repro.resilience import RunFailureError

        _tpl, coll, pg = case
        faults = "kill@t1:p0,kill@t1:p0:i1,kill@t1:p0:i2,kill@t1:p0:i3"
        with pytest.raises(RunFailureError, match="WorkerCrash"):
            run_application(
                AccumulateSum(), pg, coll, sources=_sources(coll),
                config=_config("serial", tmp_path, faults, max_retries=2),
            )


class TestFrameJournal:
    def test_append_and_entries(self):
        j = FrameJournal(2)
        j.append("begin", 0, -101, [0.0, 0.1])
        j.append("superstep", 0, 0, [["f0"], ["f1"]])
        j.append("eot", 0, -102, None)
        assert len(j) == 3
        assert j.rounds_journaled == 3
        entries = j.entries_for(1)
        assert [e.op for e in entries] == ["begin", "superstep", "eot"]
        assert entries[0].payload == 0.1
        assert entries[1].payload == ["f1"]
        assert entries[2].payload is None
        # entries_for returns a copy: mutating it leaves the WAL intact.
        entries.pop()
        assert len(j.entries_for(1)) == 3

    def test_truncate_resets_replay_base(self):
        j = FrameJournal(2)
        j.append("begin", 0, -101, None)
        j.append("superstep", 0, 0, [[], []])
        j.truncate()
        assert len(j) == 0
        assert j.entries_for(0) == []
        # Provenance counter survives truncation.
        assert j.rounds_journaled == 2
        j.append("begin", 1, -101, None)
        assert len(j) == 1
        assert j.rounds_journaled == 3

    def test_clear_is_truncate(self):
        j = FrameJournal(1)
        j.append("merge", -1, 0, [[]])
        j.clear()
        assert len(j) == 0


def test_recovery_action_as_dict_round_trips():
    a = RecoveryAction(
        "worker_respawn", 1, 2, 0, 1, 0.1234567, 1, 3, detail="WorkerCrash"
    )
    d = a.as_dict()
    assert d == {
        "kind": "worker_respawn",
        "partition": 1,
        "timestep": 2,
        "superstep": 0,
        "attempt": 1,
        "seconds": 0.123457,
        "incarnation": 1,
        "replayed_rounds": 3,
        "detail": "WorkerCrash",
    }
