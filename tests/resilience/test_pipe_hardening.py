"""Driver-side pipe hardening: corrupt streams, timeouts, worker lifecycle."""

import multiprocessing as mp
import struct
import time

import pytest

from repro.core import EngineConfig, Pattern, run_application
from repro.resilience import FaultPlan, RecoveryPolicy
from repro.runtime import GatherTimeout, ProcessCluster, RunMeta, WorkerError, WorkerLost
from repro.runtime.process_cluster import _recv_oob, _send_oob

from .conftest import AccumulateSum

pytestmark = pytest.mark.resilience


@pytest.fixture
def pipe():
    a, b = mp.Pipe()
    yield a, b
    a.close()
    b.close()


class TestRecvOob:
    def test_round_trip(self, pipe):
        a, b = pipe
        _send_oob(a, {"x": [1, 2, 3]})
        assert _recv_oob(b) == {"x": [1, 2, 3]}

    def test_numpy_buffer_round_trip(self, pipe):
        import numpy as np

        a, b = pipe
        _send_oob(a, np.arange(1000, dtype=np.int64))
        got = _recv_oob(b)
        assert got.tolist() == list(range(1000))
        got[0] = 42  # out-of-band buffers must come back writeable

    def test_truncated_header(self, pipe):
        a, b = pipe
        a.send_bytes(b"\x01")
        with pytest.raises(WorkerError, match="header is 1 bytes"):
            _recv_oob(b)

    def test_absurd_buffer_count(self, pipe):
        a, b = pipe
        a.send_bytes(struct.pack("<I", 1 << 30))
        with pytest.raises(WorkerError, match="declares 1073741824"):
            _recv_oob(b)

    def test_header_size_mismatch(self, pipe):
        a, b = pipe
        # Claims two buffers but carries only one size slot.
        a.send_bytes(struct.pack("<IQ", 2, 5))
        with pytest.raises(WorkerError, match="declares 2"):
            _recv_oob(b)

    def test_garbage_body(self, pipe):
        a, b = pipe
        a.send_bytes(struct.pack("<I", 0))
        a.send_bytes(b"not a pickle")
        with pytest.raises(WorkerError, match="failed to unpickle"):
            _recv_oob(b)

    def test_oversized_buffer(self, pipe):
        a, b = pipe
        a.send_bytes(struct.pack("<IQ", 1, 4))  # declares 4 bytes
        a.send_bytes(struct.pack("<I", 0))  # any body
        a.send_bytes(b"123456789")  # ships 9
        with pytest.raises(WorkerError, match="larger than its declared"):
            _recv_oob(b)

    def test_deadline_times_out(self, pipe):
        _a, b = pipe
        start = time.monotonic()
        with pytest.raises(GatherTimeout, match="stuck reply"):
            _recv_oob(b, deadline=time.monotonic() + 0.05, what="stuck reply")
        assert time.monotonic() - start < 2.0

    def test_no_deadline_reads_normally(self, pipe):
        a, b = pipe
        _send_oob(a, "ok")
        assert _recv_oob(b, deadline=time.monotonic() + 5.0) == "ok"


class _Cluster:
    """Build a ProcessCluster for the shared test case."""

    @staticmethod
    def make(case, sources, **kwargs):
        _tpl, coll, pg = case
        meta = RunMeta(Pattern.SEQUENTIALLY_DEPENDENT, 4, coll.delta, coll.t0)
        return ProcessCluster(pg, AccumulateSum(), meta, sources, **kwargs)


class TestLifecycle:
    def test_context_manager_reaps_on_driver_exception(self, case, sources):
        """The leak fix: a driver-side error mid-run must not orphan workers."""
        with pytest.raises(RuntimeError, match="driver-side"):
            with _Cluster.make(case, sources) as cluster:
                cluster.begin_timestep(0, [0.0, 0.0])
                procs = list(cluster._procs)
                assert all(p.is_alive() for p in procs)
                raise RuntimeError("driver-side failure")
        for p in procs:
            p.join(timeout=5)
        assert not any(p.is_alive() for p in procs)

    def test_respawn_all_bumps_incarnation(self, case, sources):
        with _Cluster.make(case, sources) as cluster:
            pids = [p.pid for p in cluster._procs]
            cluster.respawn_all()
            assert cluster.incarnation == 1
            assert [p.pid for p in cluster._procs] != pids
            # The fresh cohort must be fully functional.
            cluster.begin_timestep(0, [0.0, 0.0])

    def test_gather_timeout_validated(self, case, sources):
        with pytest.raises(ValueError, match="gather_timeout_s"):
            _Cluster.make(case, sources, gather_timeout_s=0.0)

    def test_dead_worker_surfaces_as_worker_lost(self, case, sources):
        with _Cluster.make(case, sources) as cluster:
            cluster._procs[0].terminate()
            cluster._procs[0].join(timeout=5)
            with pytest.raises(WorkerLost):
                cluster.begin_timestep(0, [0.0, 0.0])


class TestGatherTimeout:
    def test_straggler_beyond_timeout_detected_and_recovered(self, case, sources):
        """A delay longer than the gather timeout is a detected wedge."""
        _tpl, coll, pg = case
        cfg = EngineConfig(
            executor="process",
            faults=FaultPlan.parse("delay@t1:s0:p0:d1.5", seed=2),
            recovery=RecoveryPolicy(backoff_s=0.0),
            gather_timeout_s=0.3,
        )
        baseline = run_application(
            AccumulateSum(), pg, coll, sources=sources,
            config=EngineConfig(executor="process"),
        )
        result = run_application(AccumulateSum(), pg, coll, sources=sources, config=cfg)
        assert result.outputs == baseline.outputs
        assert result.metrics.retries == 1
        assert result.failure_log[0].kind in ("GatherTimeout", "WorkerLost")
