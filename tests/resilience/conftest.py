"""Shared fixtures and (picklable) computations for the resilience tests."""

import pytest

from repro.core import Pattern, TimeSeriesComputation
from repro.generators import road_latency_collection, road_network
from repro.partition import partition_graph
from repro.runtime import CollectionInstanceSource

NUM_PARTITIONS = 2
NUM_TIMESTEPS = 4


class AccumulateSum(TimeSeriesComputation):
    """Sequentially dependent: each timestep adds onto the previous one's sum.

    Any lost or replayed temporal message shows up as a wrong accumulator —
    the bit-identity canary for rollback recovery.
    """

    pattern = Pattern.SEQUENTIALLY_DEPENDENT

    def compute(self, ctx):
        if ctx.superstep == 0:
            prev = sum(m.payload for m in ctx.messages) if ctx.messages else 0
            ctx.state["acc"] = prev + ctx.subgraph.num_vertices
        ctx.vote_to_halt()

    def end_of_timestep(self, ctx):
        ctx.send_to_next_timestep(ctx.state["acc"])
        ctx.output(ctx.state["acc"])


class RingRelay(TimeSeriesComputation):
    """Multi-superstep BSP: values relay around a subgraph ring for 3 hops.

    Exercises superstep-boundary checkpoints and mid-superstep faults — a
    rollback that drops or duplicates an in-flight frame breaks the totals.
    """

    pattern = Pattern.EVENTUALLY_DEPENDENT
    HOPS = 3

    def __init__(self, num_subgraphs):
        self.num_subgraphs = num_subgraphs

    def compute(self, ctx):
        nxt = (ctx.subgraph.subgraph_id + 1) % self.num_subgraphs
        if ctx.superstep == 0:
            ctx.state["seen"] = ctx.subgraph.subgraph_id * 100 + ctx.timestep
            ctx.send_to_subgraph(nxt, ctx.state["seen"])
        elif ctx.superstep <= self.HOPS:
            for m in ctx.messages:
                ctx.state["seen"] += m.payload
            if ctx.superstep < self.HOPS:
                ctx.send_to_subgraph(nxt, ctx.state["seen"])
        ctx.vote_to_halt()

    def end_of_timestep(self, ctx):
        ctx.output(ctx.state["seen"])
        ctx.send_to_merge(ctx.state["seen"])

    def merge(self, ctx):
        if ctx.superstep == 0:
            ctx.output(sum(m.payload for m in ctx.messages))
        ctx.vote_to_halt()


@pytest.fixture(scope="module")
def case():
    tpl = road_network(400, seed=11)
    coll = road_latency_collection(tpl, NUM_TIMESTEPS, seed=11)
    pg = partition_graph(tpl, NUM_PARTITIONS)
    return tpl, coll, pg


@pytest.fixture
def sources(case):
    _tpl, coll, _pg = case
    return [CollectionInstanceSource(coll) for _ in range(NUM_PARTITIONS)]
