"""GoFS load accounting across rollback recovery (the double-count bugfix).

Rollback and resume re-trigger pack loads; the view must purge the rolled-
back attempt's load evidence (as ``trace_replay`` purges rolled-back spans)
and never record checkpoint-replay reloads as fresh I/O.  Recovered runs may
legitimately end up with *fewer* load events than fault-free ones (the pack
cache survives the rollback) — duplicated evidence was the bug.
"""

import numpy as np
import pytest

from repro.core import EngineConfig, Pattern, run_application
from repro.resilience import (
    CheckpointConfig,
    FaultPlan,
    RecoveryPolicy,
    RunFailureError,
)
from repro.runtime.host import ComputeHost, RunMeta
from repro.storage import GoFS

from .conftest import NUM_TIMESTEPS, AccumulateSum

pytestmark = pytest.mark.resilience


@pytest.fixture(scope="module")
def gofs_root(case, tmp_path_factory):
    """The resilience case written as a GoFS store: packing=2 -> 2 packs."""
    _tpl, coll, pg = case
    root = tmp_path_factory.mktemp("gofs-resilience")
    GoFS.write_collection(root, pg, coll, packing=2, binning=3)
    return root


def _gofs_sources(gofs_root, *, prefetch=False):
    return GoFS.partition_views(gofs_root, prefetch=prefetch, cache_packs=2)


def _identical(a, b):
    assert a.outputs == b.outputs
    assert a.merge_outputs == b.merge_outputs
    assert a.states == b.states


def _no_duplicate_load_evidence(views):
    for view in views:
        timesteps = [t for t, _s in view.load_events]
        assert len(timesteps) == len(set(timesteps)), (
            f"partition {view.partition_id} double-counted pack loads: {timesteps}"
        )


class TestHostRestorePurge:
    """Unit-level: ComputeHost.restore_state drives the view's purge hooks."""

    def _host(self, case, view):
        _tpl, coll, pg = case
        meta = RunMeta(Pattern.SEQUENTIALLY_DEPENDENT, NUM_TIMESTEPS, coll.delta, coll.t0)
        sg_part = np.asarray([sg.partition_id for sg in pg.subgraphs], dtype=np.int64)
        return ComputeHost(pg.partitions[0], AccumulateSum(), meta, view, sg_part)

    def test_timestep_boundary_restore_purges_reexecuted_loads(self, case, gofs_root):
        view = GoFS.partition_view(gofs_root, 0, cache_packs=1)
        host = self._host(case, view)
        snap = None
        for t in range(NUM_TIMESTEPS):
            host.begin_timestep(t)
            if t == 1:
                import pickle

                snap = pickle.loads(pickle.dumps(host.snapshot_state()))
        assert [t for t, _s in view.load_events] == [0, 2]
        # Roll back to the timestep-2 boundary: t=2 re-executes, so its
        # load evidence from the discarded attempt must go.
        host.restore_state(snap, next_timestep=2)
        assert [t for t, _s in view.load_events] == [0]
        # The replay hits the surviving pack cache: no fresh evidence, and —
        # the regression — no duplicate of the rolled-back t=2 load.
        host.begin_timestep(2)
        host.begin_timestep(3)
        assert [t for t, _s in view.load_events] == [0]
        _no_duplicate_load_evidence([view])

    def test_superstep_boundary_restore_keeps_committed_begin_load(self, case, gofs_root):
        import pickle

        view = GoFS.partition_view(gofs_root, 0, cache_packs=1)
        host = self._host(case, view)
        host.begin_timestep(0)
        host.begin_timestep(1)
        host.begin_timestep(2)
        snap = pickle.loads(pickle.dumps(host.snapshot_state()))
        host.begin_timestep(3)
        assert [t for t, _s in view.load_events] == [0, 2]
        # Restore *into* t=2 (superstep boundary): its committed begin-phase
        # load stays; the replay reload is real I/O but not fresh evidence.
        host.restore_state(snap, reload_timestep=2, next_timestep=2)
        assert [t for t, _s in view.load_events] == [0, 2]
        host.begin_timestep(3)
        assert [t for t, _s in view.load_events] == [0, 2]

    def test_restore_invalidates_inflight_prefetch(self, case, gofs_root):
        import pickle

        view = GoFS.partition_view(gofs_root, 0, prefetch=True, cache_packs=2)
        host = self._host(case, view)
        host.begin_timestep(0)
        snap = pickle.loads(pickle.dumps(host.snapshot_state()))
        host.prefetch(2)
        host.restore_state(snap, next_timestep=1)
        assert view._inflight == {}
        assert view.drain_hidden_load() == 0.0
        _no_duplicate_load_evidence([view])

    def test_pickled_fresh_view_reload_records_nothing(self, gofs_root):
        import pickle

        view = GoFS.partition_view(gofs_root, 1, prefetch=True)
        view.instance(0)
        clone = pickle.loads(pickle.dumps(view))  # a respawned worker's view
        clone.reload_instance(2)
        assert clone.load_events == []
        assert clone.prefetch_misses == 0


class TestEngineRecoveryWithGoFS:
    @pytest.fixture(scope="class")
    def baseline(self, case):
        _tpl, coll, pg = case
        return run_application(AccumulateSum(), pg, coll)

    @pytest.mark.parametrize("executor", ["serial", "process"])
    @pytest.mark.parametrize("prefetch", [False, True])
    def test_checkpoint_rollback_bit_identical(
        self, case, gofs_root, tmp_path, baseline, executor, prefetch
    ):
        _tpl, coll, pg = case
        sources = _gofs_sources(gofs_root, prefetch=prefetch)
        result = run_application(
            AccumulateSum(), pg, coll, sources=sources,
            config=EngineConfig(
                executor=executor,
                checkpoint=CheckpointConfig(dir=tmp_path, every=1),
                faults=FaultPlan.parse("kill@t2:p1", seed=3),
                recovery=RecoveryPolicy(backoff_s=0.0),
            ),
        )
        _identical(result, baseline)
        assert result.metrics.retries >= 1
        if executor != "process":
            # The serial cluster keeps the driver's sources: their load
            # evidence must be duplicate-free after the rollback replay.
            _no_duplicate_load_evidence(sources)

    def test_genesis_rollback_purges_evidence(self, case, gofs_root, baseline):
        _tpl, coll, pg = case
        sources = _gofs_sources(gofs_root, prefetch=True)
        result = run_application(
            AccumulateSum(), pg, coll, sources=sources,
            config=EngineConfig(
                faults=FaultPlan.parse("kill@t2:p1", seed=1),
                recovery=RecoveryPolicy(backoff_s=0.0),
            ),
        )
        _identical(result, baseline)
        assert result.metrics.retries == 1
        _no_duplicate_load_evidence(sources)

    @pytest.mark.parametrize("prefetch", [False, True])
    def test_crash_then_resume_bit_identical(
        self, case, gofs_root, tmp_path, baseline, prefetch
    ):
        _tpl, coll, pg = case
        with pytest.raises(RunFailureError):
            run_application(
                AccumulateSum(), pg, coll,
                sources=_gofs_sources(gofs_root, prefetch=prefetch),
                config=EngineConfig(
                    checkpoint=CheckpointConfig(dir=tmp_path, every=1),
                    faults=FaultPlan.parse("kill@t2:p0", seed=3),
                    recovery=RecoveryPolicy(backoff_s=0.0, max_retries=0),
                ),
            )
        fresh = _gofs_sources(gofs_root, prefetch=prefetch)
        resumed = run_application(
            AccumulateSum(), pg, coll, sources=fresh,
            config=EngineConfig(checkpoint=CheckpointConfig(dir=tmp_path)),
            resume_from=True,
        )
        _identical(resumed, baseline)
        assert resumed.timesteps_executed == baseline.timesteps_executed
        _no_duplicate_load_evidence(fresh)
