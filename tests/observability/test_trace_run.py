"""Integration: traced engine runs across executors, storage, and rebalancing."""

import pickle

import pytest

from repro.algorithms import MemeTrackingComputation, TDSPComputation
from repro.analysis import crosscheck_trace, replay_partition_breakdown
from repro.core import EngineConfig, run_application
from repro.generators import road_latency_collection, tweet_collection
from repro.observability import validate_chrome_trace
from repro.partition import HashPartitioner, partition_graph
from repro.runtime.gc_model import GCModel
from repro.runtime.rebalance import GreedyRebalancer
from repro.storage import GoFS
from tests.conftest import make_grid_template

PARTITIONS = 3


@pytest.fixture
def road_case():
    tpl = make_grid_template(5, 6)
    coll = road_latency_collection(tpl, 6, seed=2, delta=5.0)
    pg = partition_graph(tpl, PARTITIONS, HashPartitioner(seed=1))
    return tpl, coll, pg


@pytest.fixture
def tweet_case():
    tpl = make_grid_template(6, 6)
    coll = tweet_collection(tpl, 5, seed=3, delta=5.0)
    pg = partition_graph(tpl, PARTITIONS, HashPartitioner(seed=1))
    return tpl, coll, pg


class TestTracedRun:
    def test_untraced_by_default(self, road_case):
        _tpl, coll, pg = road_case
        res = run_application(TDSPComputation(0), pg, coll)
        assert res.trace is None

    def test_tracing_does_not_change_results(self, road_case):
        _tpl, coll, pg = road_case
        plain = run_application(TDSPComputation(0), pg, coll)
        traced = run_application(
            TDSPComputation(0), pg, coll, config=EngineConfig(tracing=True)
        )
        assert pickle.dumps(plain.states) == pickle.dumps(traced.states)
        assert pickle.dumps(plain.outputs) == pickle.dumps(traced.outputs)
        # wall times are measured (vary run to run); counts are deterministic
        deterministic = (
            "timesteps", "supersteps", "messages", "local_messages",
            "remote_messages", "frames", "bytes_sent", "cut_traffic_ratio",
        )
        a, b = plain.metrics.summary(), traced.metrics.summary()
        assert {k: a[k] for k in deterministic} == {k: b[k] for k in deterministic}

    @pytest.mark.parametrize("executor", ["serial", "thread"])
    def test_trace_validates_and_replays(self, road_case, executor):
        _tpl, coll, pg = road_case
        res = run_application(
            TDSPComputation(0), pg, coll,
            config=EngineConfig(executor=executor, tracing=True),
        )
        assert res.trace is not None
        assert validate_chrome_trace(res.trace.chrome_trace()) == []
        assert crosscheck_trace(res) == []
        # one track per partition plus the driver
        pids = {pid for pid, _ in res.trace.spans}
        assert pids == {0, 1, 2, 3}

    def test_replay_matches_partition_breakdown(self, road_case):
        _tpl, coll, pg = road_case
        res = run_application(
            TDSPComputation(0), pg, coll, config=EngineConfig(tracing=True)
        )
        m = res.metrics
        replayed = replay_partition_breakdown(
            res.trace.event_records(), m.num_partitions, barrier_s=m.barrier_s
        )
        for got, want in zip(replayed, m.partition_breakdown()):
            assert got.compute_s == pytest.approx(want.compute_s, abs=1e-9)
            assert got.partition_overhead_s == pytest.approx(
                want.partition_overhead_s, abs=1e-9
            )
            assert got.sync_overhead_s == pytest.approx(want.sync_overhead_s, abs=1e-9)

    def test_expected_event_kinds_present(self, road_case):
        _tpl, coll, pg = road_case
        res = run_application(
            TDSPComputation(0), pg, coll, config=EngineConfig(tracing=True)
        )
        kinds = {e["kind"] for e in res.trace.event_records()}
        assert {"step", "barrier", "sends", "frame_ship", "instance_load"} <= kinds

    def test_gc_and_rebalance_events(self, tweet_case):
        _tpl, coll, pg = tweet_case
        cfg = EngineConfig(
            tracing=True,
            rebalancer=GreedyRebalancer(imbalance_threshold=1.01),
            gc_model=GCModel(interval=2, pause_per_gib_s=0.5),
        )
        res = run_application(MemeTrackingComputation(0), pg, coll, config=cfg)
        events = res.trace.event_records()
        kinds = {e["kind"] for e in events}
        assert "gc_pause" in kinds
        if res.metrics.total_migrations():
            assert {"migration", "migrate"} <= kinds
            moves = [e for e in events if e["kind"] == "migrate"]
            assert all({"subgraph", "src", "dst", "nbytes", "cost_s"} <= set(e) for e in moves)
        # replay still matches with GC + migrations in the wall accounting
        assert crosscheck_trace(res) == []


class TestProcessClusterTracing:
    def test_worker_telemetry_marshalled(self, road_case, tmp_path):
        _tpl, coll, pg = road_case
        root = tmp_path / "store"
        GoFS.write_collection(root, pg, coll, packing=2)
        res = run_application(
            TDSPComputation(0), pg, coll,
            config=EngineConfig(executor="process", tracing=True),
            sources=GoFS.partition_views(root),
        )
        assert validate_chrome_trace(res.trace.chrome_trace()) == []
        assert crosscheck_trace(res) == []
        pids = {pid for pid, _ in res.trace.spans}
        assert {1, 2, 3} <= pids, "worker spans did not make it back to the driver"
        kinds = {e["kind"] for e in res.trace.event_records()}
        assert "slice_load" in kinds  # GoFS pack loads traced inside workers
        # driver-side scatter/gather spans
        driver_spans = {s.name for pid, s in res.trace.spans if pid == 0}
        assert {"ship", "barrier"} <= driver_spans
