"""Snapshot exporters, schema validation, and the `tibsp top` renderer."""

import io
import json

import pytest

from repro.observability import (
    JsonlSnapshotExporter,
    PrometheusTextfileExporter,
    latest_snapshot,
    read_snapshots,
    render_top,
    run_top,
    validate_live_snapshot,
)
from repro.observability.export import render_prometheus


def _snapshot(seq=0, **overrides):
    record = {
        "schema": 1,
        "kind": "live_snapshot",
        "seq": seq,
        "wall_s": 1.5,
        "phase": "compute",
        "timestep": 3,
        "superstep": 1,
        "progress": {"timesteps_done": 3, "num_timesteps": 6, "supersteps": 10},
        "totals": {
            "total_wall_s": 1.2, "messages": 40, "remote_messages": 10,
            "cut_traffic_ratio": 0.25, "load_blocked_s": 0.1,
            "load_hidden_s": 0.05, "prefetch_s": 0.0,
        },
        "partitions": [
            {
                "partition": p, "busy_s": 0.4 + 0.1 * p, "compute_s": 0.3,
                "send_s": 0.1, "messages": 10 + p, "heartbeats": 4,
                "utilization": (0.4 + 0.1 * p) / 0.6, "last_seen_age_s": 0.01,
            }
            for p in range(3)
        ],
        "sources": {"prefetch_hits": 2, "prefetch_misses": 1, "resident_bytes": 1024},
        "health": {"stragglers": [2], "stalled": False, "recent": []},
    }
    record.update(overrides)
    return record


class TestValidation:
    def test_valid_snapshot(self):
        assert validate_live_snapshot(_snapshot()) == []

    def test_rejects_missing_and_wrong_types(self):
        bad = _snapshot()
        del bad["totals"]
        bad["seq"] = "zero"
        errors = validate_live_snapshot(bad)
        assert errors
        joined = " ".join(errors)
        assert "totals" in joined and "seq" in joined

    def test_rejects_malformed_partition_rows(self):
        bad = _snapshot(partitions=[{"partition": 0}])
        assert validate_live_snapshot(bad)


class TestExporters:
    def test_jsonl_exporter_appends_and_is_readable(self, tmp_path):
        path = tmp_path / "live.jsonl"
        exp = JsonlSnapshotExporter(path)
        exp.export(_snapshot(0))
        exp.export(_snapshot(1))
        exp.close()
        exp.close()  # idempotent
        records = read_snapshots(path)
        assert [r["seq"] for r in records] == [0, 1]

    def test_prometheus_exporter_atomic_replace(self, tmp_path):
        path = tmp_path / "live.prom"
        exp = PrometheusTextfileExporter(path)
        exp.export(_snapshot(0))
        first = path.read_text()
        exp.export(_snapshot(1))
        second = path.read_text()
        exp.close()
        # Each export replaces the whole file (textfile-collector contract).
        assert "tibsp_snapshot_seq 0" in first
        assert "tibsp_snapshot_seq 1" in second
        assert not list(tmp_path.glob("*.tmp*"))

    def test_render_prometheus_exposition_format(self):
        text = render_prometheus(_snapshot())
        lines = text.splitlines()
        assert any(l.startswith("# HELP tibsp_messages_total") for l in lines)
        assert any(l.startswith("# TYPE tibsp_messages_total counter") for l in lines)
        assert 'tibsp_partition_messages_total{partition="2"} 12' in lines
        assert "tibsp_source_prefetch_hits_total 2" in lines
        assert "tibsp_stragglers 1" in lines
        # Every sample line is `name{labels} value` with a float-parseable value.
        for line in lines:
            if line.startswith("#") or not line:
                continue
            float(line.rsplit(" ", 1)[1])


class TestLatestSnapshot:
    def test_returns_last_complete_record(self, tmp_path):
        path = tmp_path / "live.jsonl"
        with path.open("w") as fh:
            fh.write(json.dumps(_snapshot(0)) + "\n")
            fh.write(json.dumps(_snapshot(1)) + "\n")
            fh.write('{"kind": "live_snapshot", "seq": 2, "tor')  # torn write
        snap = latest_snapshot(path)
        assert snap["seq"] == 1

    def test_missing_file(self, tmp_path):
        assert latest_snapshot(tmp_path / "nope.jsonl") is None


class TestTopRenderer:
    def test_render_contains_progress_and_partitions(self):
        text = render_top(_snapshot(), width=100)
        assert "3/6 timesteps" in text
        assert "compute t=3 s=1" in text
        for p in range(3):
            assert f"\n   {p} " in text
        assert "*straggler" in text

    def test_render_stalled_warning(self):
        snap = _snapshot(health={"stragglers": [], "stalled": True, "recent": [
            {"kind": "stalled", "partition": 1, "timestep": 3, "superstep": 1,
             "wall_s": 1.4, "seconds": 5.0, "detail": "round open for 5.00s"},
        ]})
        text = render_top(snap)
        assert "STALLED" in text.upper()

    def test_run_top_once(self, tmp_path):
        path = tmp_path / "live.jsonl"
        path.write_text(json.dumps(_snapshot(4)) + "\n")
        out = io.StringIO()
        assert run_top(tmp_path, once=True, out=out) == 0
        assert "snapshot #4" in out.getvalue()

    def test_run_top_once_empty_dir(self, tmp_path):
        out = io.StringIO()
        assert run_top(tmp_path, once=True, out=out) == 1
