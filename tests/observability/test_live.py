"""Live telemetry plane: exact mirroring, health detection, engine wiring."""

import pickle

import pytest

from repro.algorithms import TDSPComputation
from repro.core import EngineConfig, run_application
from repro.generators import road_latency_collection
from repro.observability import (
    HealthEvent,
    LiveConfig,
    LiveMetrics,
    live_enabled,
    read_snapshots,
    validate_live_snapshot,
)
from repro.partition import HashPartitioner, partition_graph
from repro.runtime import CollectionInstanceSource
from repro.runtime.metrics import PHASE_COMPUTE, MetricsCollector, StepRecord
from tests.conftest import make_grid_template

PARTITIONS = 3


@pytest.fixture
def road_case():
    tpl = make_grid_template(5, 6)
    coll = road_latency_collection(tpl, 6, seed=2, delta=5.0)
    pg = partition_graph(tpl, PARTITIONS, HashPartitioner(seed=1))
    return tpl, coll, pg


def _live_config(**overrides):
    """Snapshot at every observation, no watchdog thread: deterministic."""
    defaults = dict(interval_s=0.0, heartbeat_s=None)
    defaults.update(overrides)
    return LiveConfig(**defaults)


class TestLiveEnabled:
    def test_interpretation(self):
        assert not live_enabled(None)
        assert not live_enabled(False)
        assert live_enabled(True)
        assert live_enabled(LiveConfig())
        assert not live_enabled(LiveConfig(enabled=False))


class TestEngineIntegration:
    def test_live_off_by_default(self, road_case):
        _tpl, coll, pg = road_case
        res = run_application(TDSPComputation(0), pg, coll)
        assert res.live is None
        assert res.health_events == []

    @pytest.mark.parametrize("executor", ["serial", "thread"])
    def test_summary_matches_collector_exactly(self, road_case, executor):
        _tpl, coll, pg = road_case
        res = run_application(
            TDSPComputation(0), pg, coll,
            config=EngineConfig(executor=executor, live=_live_config()),
        )
        assert res.live is not None
        # Not approximately: the mirror saw the same records in the same order.
        assert res.live.summary() == res.metrics.summary()

    def test_summary_matches_collector_process_executor(self, road_case):
        _tpl, coll, pg = road_case
        sources = [CollectionInstanceSource(coll) for _ in range(PARTITIONS)]
        res = run_application(
            TDSPComputation(0), pg, coll, sources=sources,
            config=EngineConfig(executor="process", live=_live_config()),
        )
        assert res.live.summary() == res.metrics.summary()
        # Hosts published per-source stats on the protocol replies.
        final = res.live.last_snapshot()
        assert final["sources"].get("resident_bytes", 0) > 0

    def test_results_bit_identical_live_on_vs_off(self, road_case):
        _tpl, coll, pg = road_case
        plain = run_application(TDSPComputation(0), pg, coll)
        live = run_application(
            TDSPComputation(0), pg, coll,
            config=EngineConfig(live=_live_config()),
        )
        assert pickle.dumps(plain.states) == pickle.dumps(live.states)
        assert pickle.dumps(plain.outputs) == pickle.dumps(live.outputs)

    def test_live_true_shorthand(self, road_case):
        _tpl, coll, pg = road_case
        res = run_application(
            TDSPComputation(0), pg, coll, config=EngineConfig(live=True)
        )
        assert res.live is not None
        assert res.live.summary() == res.metrics.summary()

    def test_snapshots_validate_and_export(self, road_case, tmp_path):
        _tpl, coll, pg = road_case
        res = run_application(
            TDSPComputation(0), pg, coll,
            config=EngineConfig(live=_live_config(export_dir=str(tmp_path))),
        )
        records = read_snapshots(tmp_path / "live.jsonl")
        assert records, "no snapshots exported"
        for rec in records:
            assert validate_live_snapshot(rec) == []
        assert [r["seq"] for r in records] == sorted(r["seq"] for r in records)
        # The final exported snapshot's totals ARE the run summary.
        assert records[-1]["totals"] == res.metrics.summary()
        prom = (tmp_path / "live.prom").read_text()
        assert "tibsp_messages_total" in prom
        assert 'tibsp_partition_busy_s_total{partition="0"}' in prom

    def test_finalize_idempotent(self, road_case):
        _tpl, coll, pg = road_case
        res = run_application(
            TDSPComputation(0), pg, coll, config=EngineConfig(live=_live_config())
        )
        final = res.live.last_snapshot()
        assert res.live.finalize() == final  # engine already finalized

    def test_health_events_in_event_log_when_traced(self, road_case):
        _tpl, coll, pg = road_case
        # Absurdly low straggler bar: some partition always trips it, which
        # proves health events flow into the PR 2 structured event log.
        res = run_application(
            TDSPComputation(0), pg, coll,
            config=EngineConfig(
                tracing=True,
                live=_live_config(straggler_factor=0.0, straggler_min_s=-1.0),
            ),
        )
        kinds = {e.kind for e in res.health_events}
        assert "straggler" in kinds
        logged = {e["kind"] for e in res.trace.event_records()}
        assert "straggler" in logged


def _mirror():
    return MetricsCollector(PARTITIONS, barrier_s=0.001)


def _rec(p, *, compute_s=0.1, send_s=0.0, messages=1, t=0, s=0):
    return StepRecord(
        phase=PHASE_COMPUTE, timestep=t, superstep=s, partition=p,
        compute_s=compute_s, send_s=send_s, subgraphs_computed=1,
        messages_sent=messages, bytes_sent=8 * messages,
    )


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def advance(self, dt):
        self.now += dt

    def __call__(self):
        return self.now


#: Snapshots only when forced: keeps the detection windows deterministic
#: (interval 0 would auto-snapshot inside every observe_* call).
MANUAL = dict(interval_s=1e9)


class TestDetection:
    def test_straggler_flagged_and_debounced(self):
        clock = FakeClock()
        live = LiveMetrics(
            PARTITIONS, mirror=_mirror(), clock=clock,
            config=_live_config(straggler_factor=2.0, straggler_min_s=0.05, **MANUAL),
        )
        live.snapshot(force=True)  # establish the window baseline
        records = [_rec(0, compute_s=1.0), _rec(1, compute_s=0.1), _rec(2, compute_s=0.1)]
        clock.advance(1.0)
        live.observe_steps(PHASE_COMPUTE, 0, 0, records)
        snap = live.snapshot(force=True)
        assert snap["health"]["stragglers"] == [0]
        events = [e for e in live.health_events() if e.kind == "straggler"]
        assert len(events) == 1 and events[0].partition == 0
        # Same partition still slow next window: no duplicate event.
        clock.advance(1.0)
        live.observe_steps(PHASE_COMPUTE, 0, 1, [
            _rec(0, compute_s=1.0, s=1), _rec(1, compute_s=0.1, s=1), _rec(2, compute_s=0.1, s=1),
        ])
        live.snapshot(force=True)
        assert len([e for e in live.health_events() if e.kind == "straggler"]) == 1

    def test_balanced_partitions_not_flagged(self):
        clock = FakeClock()
        live = LiveMetrics(
            PARTITIONS, mirror=_mirror(), clock=clock, config=_live_config(**MANUAL)
        )
        live.snapshot(force=True)
        clock.advance(1.0)
        live.observe_steps(PHASE_COMPUTE, 0, 0, [_rec(p, compute_s=0.1) for p in range(PARTITIONS)])
        snap = live.snapshot(force=True)
        assert snap["health"]["stragglers"] == []

    def test_stall_detected_once_per_round(self):
        clock = FakeClock()
        live = LiveMetrics(
            PARTITIONS, mirror=_mirror(), clock=clock,
            config=_live_config(stall_after_s=2.0, **MANUAL),
        )
        live.observe_steps(PHASE_COMPUTE, 0, 0, [_rec(1), _rec(2)])  # p0 never seen... later
        live.round_begin(PHASE_COMPUTE, 0, 1)
        clock.advance(1.0)
        assert live.check_stalled() is None  # under threshold
        clock.advance(1.5)
        event = live.check_stalled()
        assert event is not None and event.kind == "stalled"
        assert event.partition == 0  # silent longest (never reported)
        assert event.seconds == pytest.approx(2.5)
        assert live.check_stalled() is None  # flagged once per round
        # The next completed round clears the stall state.
        live.observe_steps(PHASE_COMPUTE, 0, 1, [_rec(p) for p in range(PARTITIONS)])
        assert live.snapshot(force=True)["health"]["stalled"] is False

    def test_resync_rewinds_to_restored_collector(self):
        clock = FakeClock()
        live = LiveMetrics(
            PARTITIONS, mirror=_mirror(), clock=clock, config=_live_config(**MANUAL)
        )
        live.observe_steps(PHASE_COMPUTE, 0, 0, [_rec(p, compute_s=0.5) for p in range(PARTITIONS)])
        restored = _mirror()
        restored.record_step(_rec(0, compute_s=0.2))
        live.resync(restored)
        assert live.summary() == restored.summary()
        assert live.busy_s[0] == pytest.approx(0.2)
        assert live.busy_s[1] == 0.0
        assert [e.kind for e in live.health_events()] == ["rollback"]
        # The rollback landed in the snapshot stream for `tibsp top`.
        assert live.last_snapshot()["health"]["recent"][-1]["kind"] == "rollback"

    def test_health_event_as_dict(self):
        e = HealthEvent(
            kind="straggler", partition=2, timestep=1, superstep=0,
            wall_s=1.23456789, seconds=0.5, detail="x",
        )
        d = e.as_dict()
        assert d["kind"] == "straggler" and d["partition"] == 2
        assert d["wall_s"] == 1.234568
