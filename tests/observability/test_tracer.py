"""Unit tests for the observability plane (no engine involved)."""

import json

import numpy as np
import pytest

from repro.observability import (
    DRIVER_PID,
    EVENT_SCHEMA_VERSION,
    NULL_SPAN,
    TracePacket,
    Tracer,
    chrome_trace,
    partition_pid,
    read_event_log,
    run_provenance,
    tracing_enabled,
    validate_chrome_trace,
    write_event_log,
)
from repro.observability.events import normalize_event
from repro.observability.runtrace import RunTrace, TraceConfig
from repro.observability.tracer import Span


class TestTracer:
    def test_span_records_name_args_and_duration(self):
        tr = Tracer(3, "partition 2")
        with tr.span("superstep", t=1, s=0):
            pass
        (span,) = tr.spans
        assert span.name == "superstep"
        assert span.args == {"t": 1, "s": 0}
        assert span.dur_ns >= 0

    def test_spans_nest_by_containment(self):
        tr = Tracer()
        with tr.span("outer"):
            with tr.span("inner"):
                pass
        inner, outer = tr.spans  # inner closes first
        assert inner.name == "inner" and outer.name == "outer"
        assert outer.ts_ns <= inner.ts_ns
        assert outer.ts_ns + outer.dur_ns >= inner.ts_ns + inner.dur_ns

    def test_event_stamps_kind_ts_pid(self):
        tr = Tracer(5, "partition 4")
        tr.event("sends", local=3, remote=7)
        (e,) = tr.events
        assert e["kind"] == "sends" and e["pid"] == 5
        assert e["local"] == 3 and e["remote"] == 7
        assert isinstance(e["ts_ns"], int)

    def test_counters_accumulate(self):
        tr = Tracer()
        tr.count("messages.local")
        tr.count("messages.local", 4)
        tr.count("bytes", 2.5)
        assert tr.counters == {"messages.local": 5, "bytes": 2.5}

    def test_drain_detaches_and_resets(self):
        tr = Tracer(2, "partition 1")
        with tr.span("load"):
            pass
        tr.count("x")
        packet = tr.drain()
        assert isinstance(packet, TracePacket)
        assert packet.pid == 2 and len(packet.spans) == 1
        assert tr.spans == [] and tr.events == [] and tr.counters == {}
        assert tr.drain() is None  # empty tracer drains to None

    def test_null_span_is_reusable(self):
        for _ in range(3):
            with NULL_SPAN:
                pass

    def test_partition_pid_offsets_past_driver(self):
        assert DRIVER_PID == 0
        assert partition_pid(0) == 1
        assert partition_pid(7) == 8


class TestTracingEnabled:
    @pytest.mark.parametrize(
        "value,expected",
        [
            (None, False),
            (False, False),
            (True, True),
            (TraceConfig(), True),
            (TraceConfig(enabled=False), False),
        ],
    )
    def test_interpretations(self, value, expected):
        assert tracing_enabled(value) is expected


class TestEventLog:
    def test_normalize_relative_microseconds(self):
        raw = {"kind": "sends", "ts_ns": 2_500_000, "pid": 1, "local": np.int64(3)}
        rec = normalize_event(raw, epoch_ns=500_000)
        assert rec["schema"] == EVENT_SCHEMA_VERSION
        assert rec["ts_us"] == 2000.0
        assert rec["local"] == 3 and isinstance(rec["local"], int)
        assert "ts_ns" not in rec

    def test_roundtrip_jsonl(self, tmp_path):
        records = [
            {"schema": 1, "kind": "step", "ts_us": 1.0, "pid": 0, "compute_s": 0.25},
            {"schema": 1, "kind": "barrier", "ts_us": 2.5, "pid": 0},
        ]
        path = write_event_log(tmp_path / "events.jsonl", records)
        assert read_event_log(path) == records
        # one compact object per line
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0])["kind"] == "step"


class TestChromeTrace:
    def _trace(self):
        spans = [
            (0, Span("timestep", 1_000_000, 500_000, {"t": 0})),
            (1, Span("compute", 1_100_000, 100_000, None)),
        ]
        events = [{"kind": "sends", "ts_ns": 1_200_000, "pid": 1, "local": 2}]
        return chrome_trace(
            spans, events, epoch_ns=1_000_000, track_labels={0: "driver", 1: "partition 0"}
        )

    def test_required_keys_and_metadata_tracks(self):
        trace = self._trace()
        assert validate_chrome_trace(trace) == []
        names = {e["name"] for e in trace["traceEvents"] if e["ph"] == "M"}
        assert names == {"process_name", "process_sort_index"}
        labels = {
            e["pid"]: e["args"]["name"]
            for e in trace["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert labels == {0: "driver", 1: "partition 0"}

    def test_span_becomes_complete_event_in_microseconds(self):
        trace = self._trace()
        (x,) = [e for e in trace["traceEvents"] if e["ph"] == "X" and e["pid"] == 0]
        assert x["ts"] == 0.0 and x["dur"] == 500.0
        assert x["args"] == {"t": 0}

    def test_validator_catches_missing_keys(self):
        bad = {"traceEvents": [{"ph": "X", "ts": 0, "pid": 0}]}
        problems = validate_chrome_trace(bad)
        assert any("missing keys" in p for p in problems)

    def test_validator_catches_non_monotone_track(self):
        bad = {
            "traceEvents": [
                {"ph": "i", "name": "a", "ts": 5.0, "pid": 0, "tid": 0},
                {"ph": "i", "name": "b", "ts": 1.0, "pid": 0, "tid": 0},
            ]
        }
        problems = validate_chrome_trace(bad)
        assert any("monotonicity" in p for p in problems)


class TestRunTrace:
    def test_absorb_merges_tracks_and_counters(self):
        rt = RunTrace()
        a, b = Tracer(1, "partition 0"), Tracer(2, "partition 1")
        with a.span("compute"):
            pass
        a.count("messages.remote", 3)
        b.count("messages.remote", 4)
        b.event("sends", local=0, remote=4)
        rt.absorb(a.drain())
        rt.absorb(b.drain())
        assert rt.counters == {"messages.remote": 7}
        assert rt.track_labels[1] == "partition 0"
        assert {pid for pid, _ in rt.spans} == {1}
        assert len(rt.events) == 1

    def test_write_emits_three_artifacts(self, tmp_path):
        rt = RunTrace()
        with rt.tracer.span("timestep", t=0):
            rt.tracer.event("barrier", wall_s=0.01)
        paths = rt.write(tmp_path, run_provenance(algorithm="tdsp"))
        assert sorted(p.name for p in tmp_path.iterdir()) == [
            "events.jsonl",
            "manifest.json",
            "trace.json",
        ]
        manifest = json.loads(paths["manifest"].read_text())
        assert manifest["algorithm"] == "tdsp"
        assert "counters" in manifest and "created_utc" in manifest
        trace = json.loads(paths["trace"].read_text())
        assert validate_chrome_trace(trace) == []
        (rec,) = read_event_log(paths["events"])
        assert rec["kind"] == "barrier" and rec["schema"] == EVENT_SCHEMA_VERSION


class TestProvenance:
    def test_envelope_fields(self):
        prov = run_provenance(algorithm="meme", graph="WIKI")
        assert prov["schema_version"] == 1
        assert prov["algorithm"] == "meme" and prov["graph"] == "WIKI"
        assert "created_utc" in prov and "git_describe" in prov
