"""Cross-module integration fuzz: the whole stack on random inputs.

Property-based end-to-end tests that exercise generator → partitioner →
GoFS → engine → algorithm → analysis in one pass, asserting the global
invariants that no unit test covers in combination:

* algorithm results are invariant to partitioner, partition count, storage
  path (in-memory vs GoFS), and executor;
* metrics accounting is internally consistent (walls ≥ per-partition busy,
  fractions sum to 1, timestep series length matches execution);
* analysis/exports are faithful to the run they summarize.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.algorithms import (
    MemeTrackingComputation,
    TDSPComputation,
    colored_timesteps_from_result,
    tdsp_labels_from_result,
)
from repro.algorithms import reference as ref
from repro.analysis import frontier_matrix, result_summary, utilization_rows
from repro.core import EngineConfig, run_application
from repro.generators import (
    SIRTweetPopulator,
    UniformLatencyPopulator,
    CompositePopulator,
    make_collection,
)
from repro.partition import (
    BFSPartitioner,
    HashPartitioner,
    MetisLikePartitioner,
    partition_graph,
)
from repro.runtime import CostModel
from repro.storage import GoFS
from tests.conftest import make_random_template

PARTITIONERS = {
    "hash": HashPartitioner,
    "bfs": BFSPartitioner,
    "metis": MetisLikePartitioner,
}


def make_workload(seed: int, n: int = 35, m: int = 70, T: int = 6):
    rng = np.random.default_rng(seed)
    tpl = make_random_template(n, m, rng)
    populator = CompositePopulator(
        [
            UniformLatencyPopulator(0.3, 4.0, seed=seed),
            SIRTweetPopulator(
                tpl, [0], hit_probability=0.4, num_timesteps=T, seed=seed
            ),
        ]
    )
    return tpl, make_collection(tpl, T, populator, delta=5.0)


class TestPartitionInvariance:
    @settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(
        seed=st.integers(0, 2**16),
        part_a=st.sampled_from(sorted(PARTITIONERS)),
        part_b=st.sampled_from(sorted(PARTITIONERS)),
        ka=st.integers(1, 4),
        kb=st.integers(1, 4),
    )
    def test_tdsp_invariant_to_partitioning(self, seed, part_a, part_b, ka, kb):
        tpl, coll = make_workload(seed)
        results = []
        for name, k in ((part_a, ka), (part_b, kb)):
            pg = partition_graph(tpl, k, PARTITIONERS[name](seed=seed))
            res = run_application(TDSPComputation(0), pg, coll)
            results.append(tdsp_labels_from_result(res, tpl.num_vertices))
        np.testing.assert_allclose(
            np.nan_to_num(results[0], posinf=1e18),
            np.nan_to_num(results[1], posinf=1e18),
        )

    @settings(max_examples=6, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(0, 2**16), k=st.integers(1, 4))
    def test_meme_invariant_to_partitioning(self, seed, k):
        tpl, coll = make_workload(seed)
        pg = partition_graph(tpl, k, MetisLikePartitioner(seed=seed))
        got = colored_timesteps_from_result(
            run_application(MemeTrackingComputation(0), pg, coll)
        )
        assert got == ref.temporal_meme_bfs(coll, 0)


class TestStorageAndExecutorInvariance:
    @settings(max_examples=5, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(0, 2**16))
    def test_gofs_and_executors_agree(self, seed, tmp_path_factory):
        tpl, coll = make_workload(seed)
        pg = partition_graph(tpl, 3, HashPartitioner(seed=seed))
        baseline = tdsp_labels_from_result(
            run_application(TDSPComputation(0), pg, coll), tpl.num_vertices
        )
        root = tmp_path_factory.mktemp(f"fuzz{seed}")
        GoFS.write_collection(root, pg, coll, packing=3, binning=2)
        for executor in ("serial", "thread", "process", "socket"):
            res = run_application(
                TDSPComputation(0),
                pg,
                coll,
                sources=GoFS.partition_views(root),
                config=EngineConfig(executor=executor),
            )
            got = tdsp_labels_from_result(res, tpl.num_vertices)
            np.testing.assert_allclose(
                np.nan_to_num(got, posinf=1e18), np.nan_to_num(baseline, posinf=1e18)
            )


class TestMetricsConsistency:
    @settings(max_examples=6, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(0, 2**16), k=st.integers(2, 4))
    def test_accounting_invariants(self, seed, k):
        tpl, coll = make_workload(seed)
        pg = partition_graph(tpl, k, HashPartitioner(seed=seed))
        res = run_application(
            TDSPComputation(0), pg, coll, config=EngineConfig(cost_model=CostModel())
        )
        m = res.metrics
        # Walls are at least the busiest partition's contribution.
        for key, wall in m.superstep_walls().items():
            busy = [r.busy_s for r in m.step_records
                    if (r.phase, r.timestep, r.superstep) == key]
            assert wall >= max(busy) - 1e-12
        # Timestep series matches executed timesteps; total is their sum.
        series = m.timestep_series()
        assert len(series) == res.timesteps_executed
        assert m.total_wall() == pytest.approx(sum(series) + m.merge_wall())
        # Utilization fractions always sum to 1 per partition.
        for u in utilization_rows(res):
            total = (
                u.compute_fraction
                + u.partition_overhead_fraction
                + u.sync_overhead_fraction
            )
            assert total == pytest.approx(1.0)
        # Frontier accounting: every reached vertex appears exactly once.
        M = frontier_matrix(res, pg)
        reached = np.isfinite(
            tdsp_labels_from_result(res, tpl.num_vertices)
        ).sum()
        assert M.sum() == reached
        # Export summary mirrors the metrics.
        summary = result_summary(res)
        assert summary["metrics"]["timesteps"] == res.timesteps_executed
        assert len(summary["partitions"]) == k
