"""Unit tests for the Subgraph view (numbering, adjacency, remote edges)."""

import numpy as np
import pytest

from repro.graph import RemoteEdges, Subgraph


def make_subgraph():
    """Subgraph over global vertices {2, 5, 9}: path 2—5—9, remote 9→12."""
    vertices = np.array([2, 5, 9])
    # Local CSR over local numbers 0(=2), 1(=5), 2(=9).
    indptr = np.array([0, 1, 3, 4])
    indices = np.array([1, 0, 2, 1])
    edge_index = np.array([10, 10, 11, 11])  # global edge ids of (2,5) and (5,9)
    remote = RemoteEdges(
        src_local=np.array([2]),
        dst_global=np.array([12]),
        dst_subgraph=np.array([3]),
        dst_partition=np.array([1]),
        edge_index=np.array([12]),
    )
    return Subgraph(7, 0, vertices, indptr, indices, edge_index, remote)


class TestNumbering:
    def test_local_of_scalar(self):
        sg = make_subgraph()
        assert sg.local_of(5) == 1
        assert sg.local_of(9) == 2

    def test_local_of_array(self):
        sg = make_subgraph()
        assert np.array_equal(sg.local_of(np.array([9, 2])), [2, 0])

    def test_local_of_missing_raises(self):
        sg = make_subgraph()
        with pytest.raises(KeyError):
            sg.local_of(3)
        with pytest.raises(KeyError):
            sg.local_of(np.array([2, 99]))

    def test_global_of(self):
        sg = make_subgraph()
        assert sg.global_of(0) == 2
        assert np.array_equal(sg.global_of(np.array([2, 1])), [9, 5])

    def test_contains(self):
        sg = make_subgraph()
        assert sg.contains(5) and not sg.contains(6)
        assert np.array_equal(sg.contains(np.array([2, 3, 9])), [True, False, True])

    def test_contains_beyond_last(self):
        sg = make_subgraph()
        assert not sg.contains(100)

    def test_unsorted_vertices_rejected(self):
        with pytest.raises(ValueError, match="sorted"):
            Subgraph(0, 0, np.array([5, 2]), np.array([0, 0, 0]), np.array([]), np.array([]))


class TestAdjacency:
    def test_sizes(self):
        sg = make_subgraph()
        assert sg.num_vertices == 3
        assert sg.num_local_edges == 4
        assert sg.num_remote_edges == 1

    def test_neighbors(self):
        sg = make_subgraph()
        assert np.array_equal(sg.neighbors(1), [0, 2])
        assert np.array_equal(sg.neighbors(0), [1])

    def test_edges_of(self):
        sg = make_subgraph()
        assert np.array_equal(sg.edges_of(1), [10, 11])

    def test_remote_edges_of(self):
        sg = make_subgraph()
        rows = sg.remote_edges_of(2)
        assert np.array_equal(rows, [0])
        assert sg.remote.dst_global[rows[0]] == 12
        assert len(sg.remote_edges_of(0)) == 0

    def test_neighbor_subgraphs(self):
        sg = make_subgraph()
        assert np.array_equal(sg.neighbor_subgraphs, [3])

    def test_all_neighbor_subgraphs_includes_incoming(self):
        sg = Subgraph(
            0,
            0,
            np.array([1]),
            np.array([0, 0]),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            None,
            in_neighbor_subgraphs=np.array([5]),
        )
        assert np.array_equal(sg.all_neighbor_subgraphs, [5])

    def test_indptr_length_validated(self):
        with pytest.raises(ValueError, match="indptr"):
            Subgraph(0, 0, np.array([1, 2]), np.array([0, 0]), np.array([]), np.array([]))


class TestRemoteEdges:
    def test_empty(self):
        r = RemoteEdges.empty()
        assert len(r) == 0

    def test_len(self):
        sg = make_subgraph()
        assert len(sg.remote) == 1
