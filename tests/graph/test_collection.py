"""Unit tests for TimeSeriesGraphCollection and instance providers."""

import numpy as np
import pytest

from repro.graph import (
    CallableInstanceProvider,
    GraphInstance,
    GraphTemplate,
    ListInstanceProvider,
    TimeSeriesGraphCollection,
)


@pytest.fixture
def tpl():
    return GraphTemplate(3, [0, 1], [1, 2])


def make_collection(tpl, count=4, t0=10.0, delta=2.0):
    instances = [GraphInstance(tpl, t0 + k * delta) for k in range(count)]
    return TimeSeriesGraphCollection(tpl, instances, t0=t0, delta=delta)


class TestProviders:
    def test_list_provider(self, tpl):
        p = ListInstanceProvider([GraphInstance(tpl, 0.0)])
        assert len(p) == 1
        assert p.get(0).timestamp == 0.0
        with pytest.raises(IndexError):
            p.get(1)
        with pytest.raises(IndexError):
            p.get(-1)

    def test_callable_provider(self, tpl):
        calls = []

        def factory(k):
            calls.append(k)
            return GraphInstance(tpl, float(k))

        p = CallableInstanceProvider(3, factory)
        assert len(p) == 3
        assert p.get(2).timestamp == 2.0
        assert calls == [2]  # lazy: only what's accessed
        with pytest.raises(IndexError):
            p.get(3)

    def test_callable_provider_negative_count(self, tpl):
        with pytest.raises(ValueError):
            CallableInstanceProvider(-1, lambda k: None)


class TestCollection:
    def test_len_and_access(self, tpl):
        coll = make_collection(tpl)
        assert len(coll) == 4
        assert coll.instance(0).timestamp == 10.0
        assert coll.instance(3).timestamp == 16.0

    def test_timestamp_mapping(self, tpl):
        coll = make_collection(tpl)
        assert coll.timestamp_of(2) == 14.0
        assert coll.timestep_at(14.0) == 2
        assert coll.timestep_at(15.9) == 2

    def test_iteration(self, tpl):
        coll = make_collection(tpl)
        stamps = [inst.timestamp for inst in coll]
        assert stamps == [10.0, 12.0, 14.0, 16.0]

    def test_delta_must_be_positive(self, tpl):
        with pytest.raises(ValueError):
            TimeSeriesGraphCollection(tpl, [], delta=0.0)

    def test_foreign_template_rejected(self, tpl):
        other = GraphTemplate(4, [0], [1])
        coll = TimeSeriesGraphCollection(tpl, [GraphInstance(other, 0.0)])
        with pytest.raises(ValueError, match="template"):
            coll.instance(0)

    def test_equal_template_by_value_accepted(self, tpl):
        clone = GraphTemplate(3, [0, 1], [1, 2])
        coll = TimeSeriesGraphCollection(tpl, [GraphInstance(clone, 0.0)], t0=0.0)
        assert coll.instance(0).timestamp == 0.0

    def test_window(self, tpl):
        coll = make_collection(tpl)
        win = coll.window(1, 3)
        assert len(win) == 2
        assert win.t0 == 12.0
        assert win.instance(0).timestamp == 12.0
        assert win.instance(1).timestamp == 14.0

    def test_window_bounds(self, tpl):
        coll = make_collection(tpl)
        with pytest.raises(IndexError):
            coll.window(2, 5)
        with pytest.raises(IndexError):
            coll.window(-1, 2)

    def test_window_of_window(self, tpl):
        coll = make_collection(tpl, count=6)
        inner = coll.window(1, 5).window(1, 3)
        assert len(inner) == 2
        assert inner.instance(0).timestamp == coll.instance(2).timestamp
