"""Unit tests for attribute specs, schemas, and columnar tables."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.graph.attributes import AttributeSchema, AttributeSpec, AttributeTable


class TestAttributeSpec:
    def test_dtype_aliases(self):
        assert AttributeSpec("a", "int").dtype == np.dtype(np.int64)
        assert AttributeSpec("a", "long").dtype == np.dtype(np.int64)
        assert AttributeSpec("a", "float").dtype == np.dtype(np.float64)
        assert AttributeSpec("a", "double").dtype == np.dtype(np.float64)
        assert AttributeSpec("a", "bool").dtype == np.dtype(np.bool_)
        assert AttributeSpec("a", "object").dtype == np.dtype(object)
        assert AttributeSpec("a", "str").dtype == np.dtype(object)

    def test_numpy_dtype_passthrough(self):
        assert AttributeSpec("a", np.int32).dtype == np.dtype(np.int32)

    def test_default_dtype_is_float(self):
        assert AttributeSpec("a").dtype == np.dtype(np.float64)

    def test_id_reserved(self):
        with pytest.raises(ValueError, match="reserved"):
            AttributeSpec("id")

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            AttributeSpec("")

    def test_non_string_name_rejected(self):
        with pytest.raises(ValueError):
            AttributeSpec(42)

    def test_is_object(self):
        assert AttributeSpec("a", "object").is_object
        assert not AttributeSpec("a", "float").is_object

    def test_fill_value_defaults(self):
        assert AttributeSpec("a", "float").fill_value() == 0.0
        assert AttributeSpec("a", "int").fill_value() == 0
        assert AttributeSpec("a", "object").fill_value() is None

    def test_fill_value_custom_default(self):
        assert AttributeSpec("a", "float", default=1.5).fill_value() == 1.5

    def test_allocate(self):
        col = AttributeSpec("a", "float", default=2.0).allocate(4)
        assert col.shape == (4,) and np.all(col == 2.0)

    def test_allocate_object(self):
        col = AttributeSpec("a", "object").allocate(3)
        assert col.dtype == object and all(x is None for x in col)


class TestAttributeSchema:
    def test_add_and_lookup(self):
        schema = AttributeSchema([("a", "float"), "b"])
        assert "a" in schema and "b" in schema and "c" not in schema
        assert schema["a"].dtype == np.dtype(np.float64)
        assert schema.names == ["a", "b"]
        assert len(schema) == 2

    def test_duplicate_rejected(self):
        schema = AttributeSchema(["a"])
        with pytest.raises(ValueError, match="duplicate"):
            schema.add("a")

    def test_accepts_spec_tuple_and_string(self):
        schema = AttributeSchema()
        schema.add(AttributeSpec("x", "int"))
        schema.add(("y", "bool"))
        schema.add("z")
        assert schema.names == ["x", "y", "z"]

    def test_equality(self):
        a = AttributeSchema([("x", "int"), ("y", "float")])
        b = AttributeSchema([("x", "int"), ("y", "float")])
        c = AttributeSchema([("y", "float"), ("x", "int")])
        assert a == b
        assert a != c  # order matters

    def test_iteration_order(self):
        schema = AttributeSchema(["b", "a", "c"])
        assert [s.name for s in schema] == ["b", "a", "c"]

    def test_create_table(self):
        table = AttributeSchema(["a"]).create_table(5)
        assert table.n == 5


class TestAttributeTable:
    def make(self, n=4):
        schema = AttributeSchema(
            [("x", "float"), ("k", "int", 7), ("o", "object"), ("b", "bool")]
        )
        return AttributeTable(schema, n)

    def test_lazy_columns(self):
        t = self.make()
        assert t.materialized_names == []
        t.column("x")
        assert t.materialized_names == ["x"]

    def test_column_defaults(self):
        t = self.make()
        assert np.all(t.column("k") == 7)
        assert np.all(t.column("x") == 0.0)

    def test_unknown_column(self):
        with pytest.raises(KeyError):
            self.make().column("nope")

    def test_set_column_copies(self):
        t = self.make()
        values = np.arange(4, dtype=np.float64)
        t.set_column("x", values)
        values[0] = 99.0
        assert t.get("x", 0) == 0.0  # caller mutation does not alias

    def test_set_column_shape_check(self):
        with pytest.raises(ValueError, match="shape"):
            self.make().set_column("x", np.zeros(3))

    def test_set_column_dtype_coercion(self):
        t = self.make()
        t.set_column("k", [1, 2, 3, 4])
        assert t.column("k").dtype == np.dtype(np.int64)

    def test_get_set_scalar(self):
        t = self.make()
        t.set("x", 2, 3.5)
        assert t.get("x", 2) == 3.5

    def test_take(self):
        t = self.make()
        t.set_column("x", np.array([1.0, 2.0, 3.0, 4.0]))
        out = t.take("x", np.array([3, 0]))
        assert np.array_equal(out, [4.0, 1.0])
        out[0] = -1  # copy, not view
        assert t.get("x", 3) == 4.0

    def test_negative_rows_rejected(self):
        with pytest.raises(ValueError):
            AttributeTable(AttributeSchema(["a"]), -1)

    def test_copy_independent(self):
        t = self.make()
        t.set("x", 0, 5.0)
        c = t.copy()
        c.set("x", 0, 6.0)
        assert t.get("x", 0) == 5.0

    def test_equals(self):
        a, b = self.make(), self.make()
        assert a.equals(b)
        a.set("x", 0, 1.0)
        assert not a.equals(b)
        b.set("x", 0, 1.0)
        assert a.equals(b)

    def test_equals_object_columns(self):
        a, b = self.make(), self.make()
        a.set("o", 1, (1, 2))
        assert not a.equals(b)
        b.set("o", 1, (1, 2))
        assert a.equals(b)

    def test_equals_different_schema(self):
        a = AttributeTable(AttributeSchema(["x"]), 2)
        b = AttributeTable(AttributeSchema(["y"]), 2)
        assert not a.equals(b)

    def test_approx_nbytes(self):
        t = self.make(10)
        assert t.approx_nbytes() == 0
        t.column("x")
        assert t.approx_nbytes() == 80
        t.column("o")
        assert t.approx_nbytes() == 80 + 640

    def test_constructor_columns(self):
        schema = AttributeSchema([("x", "float")])
        t = AttributeTable(schema, 3, columns={"x": np.ones(3)})
        assert np.all(t.column("x") == 1.0)

    @given(st.lists(st.floats(allow_nan=False, allow_infinity=False), min_size=1, max_size=30))
    def test_roundtrip_column_values(self, values):
        schema = AttributeSchema([("x", "float")])
        t = AttributeTable(schema, len(values))
        t.set_column("x", np.asarray(values))
        assert np.array_equal(t.column("x"), np.asarray(values))
