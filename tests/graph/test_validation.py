"""Unit tests for data-model validation."""

import numpy as np
import pytest

from repro.graph import (
    AttributeSchema,
    GraphInstance,
    GraphTemplate,
    TimeSeriesGraphCollection,
    ValidationError,
    build_collection,
    validate_collection,
    validate_instance,
    validate_template,
)


def good_template():
    return GraphTemplate(
        4,
        [0, 1, 2],
        [1, 2, 3],
        vertex_schema=AttributeSchema([("v", "float")]),
        edge_schema=AttributeSchema([("w", "float")]),
    )


class TestTemplateValidation:
    def test_good(self):
        validate_template(good_template())

    def test_duplicate_vertex_ids(self):
        tpl = GraphTemplate(3, [0], [1], vertex_ids=np.array([1, 1, 2]))
        with pytest.raises(ValidationError, match="vertex external ids"):
            validate_template(tpl)

    def test_duplicate_edge_ids(self):
        tpl = GraphTemplate(3, [0, 1], [1, 2], edge_ids=np.array([5, 5]))
        with pytest.raises(ValidationError, match="edge external ids"):
            validate_template(tpl)

    def test_tampered_endpoints(self):
        tpl = good_template()
        tpl.edge_dst = tpl.edge_dst.copy()
        tpl.edge_dst[0] = 99
        with pytest.raises(ValidationError, match="endpoint"):
            validate_template(tpl)

    def test_directed_adjacency_count(self):
        tpl = GraphTemplate(3, [0, 1], [1, 2], directed=True)
        validate_template(tpl)


class TestInstanceValidation:
    def test_good(self):
        tpl = good_template()
        validate_instance(GraphInstance(tpl, 0.0))

    def test_foreign_template(self):
        tpl, other = good_template(), GraphTemplate(5, [0], [1])
        inst = GraphInstance(other, 0.0)
        with pytest.raises(ValidationError):
            validate_instance(inst, tpl)

    def test_wrong_dtype_column(self):
        tpl = good_template()
        inst = GraphInstance(tpl, 0.0)
        # Bypass set_column's coercion to simulate a corrupt table.
        inst.vertex_values._columns["v"] = np.zeros(4, dtype=np.int32)
        with pytest.raises(ValidationError, match="dtype"):
            validate_instance(inst)

    def test_unknown_column(self):
        tpl = good_template()
        inst = GraphInstance(tpl, 0.0)
        inst.vertex_values._columns["ghost"] = np.zeros(4)
        with pytest.raises(ValidationError, match="not in schema"):
            validate_instance(inst)


class TestCollectionValidation:
    def test_good(self):
        tpl = good_template()
        coll = build_collection(tpl, 3, delta=2.0)
        validate_collection(coll)

    def test_bad_timestamp(self):
        tpl = good_template()
        instances = [GraphInstance(tpl, 0.0), GraphInstance(tpl, 5.0)]
        coll = TimeSeriesGraphCollection(tpl, instances, t0=0.0, delta=1.0)
        with pytest.raises(ValidationError, match="timestamp"):
            validate_collection(coll)

    def test_shallow_skips_instances(self):
        tpl = good_template()
        instances = [GraphInstance(tpl, 99.0)]  # wrong timestamp
        coll = TimeSeriesGraphCollection(tpl, instances, t0=0.0, delta=1.0)
        validate_collection(coll, deep=False)  # passes: template-only check
        with pytest.raises(ValidationError):
            validate_collection(coll, deep=True)
