"""Unit tests for GraphTemplateBuilder and build_collection."""

import numpy as np
import pytest

from repro.graph import GraphTemplateBuilder, build_collection
from repro.graph.attributes import AttributeSpec


class TestBuilder:
    def test_incremental_build(self):
        b = GraphTemplateBuilder(name="toy")
        assert b.add_vertex("a") == 0
        assert b.add_vertex("b") == 1
        assert b.add_vertex("c") == 2
        assert b.add_edge("a", "b") == 0
        assert b.add_edge("b", "c") == 1
        tpl = b.build()
        assert tpl.num_vertices == 3 and tpl.num_edges == 2
        assert tpl.name == "toy"

    def test_auto_keys(self):
        b = GraphTemplateBuilder()
        assert b.add_vertex() == 0
        assert b.add_vertex() == 1
        b.add_edge(0, 1)
        assert b.build().num_edges == 1

    def test_duplicate_vertex_key(self):
        b = GraphTemplateBuilder()
        b.add_vertex("a")
        with pytest.raises(ValueError, match="duplicate vertex"):
            b.add_vertex("a")

    def test_unknown_edge_endpoint(self):
        b = GraphTemplateBuilder()
        b.add_vertex("a")
        with pytest.raises(KeyError, match="unknown vertex"):
            b.add_edge("a", "b")

    def test_duplicate_edge_undirected(self):
        b = GraphTemplateBuilder()
        b.add_vertex("a")
        b.add_vertex("b")
        b.add_edge("a", "b")
        with pytest.raises(ValueError, match="duplicate edge"):
            b.add_edge("b", "a")  # reversed counts as duplicate when undirected

    def test_duplicate_edge_directed_allowed_in_reverse(self):
        b = GraphTemplateBuilder(directed=True)
        b.add_vertex("a")
        b.add_vertex("b")
        b.add_edge("a", "b")
        b.add_edge("b", "a")  # fine: different directed edge
        assert b.build().num_edges == 2

    def test_allow_duplicate_flag(self):
        b = GraphTemplateBuilder()
        b.add_vertex("a")
        b.add_vertex("b")
        b.add_edge("a", "b")
        b.add_edge("a", "b", allow_duplicate=True)
        assert b.build().num_edges == 2

    def test_external_ids(self):
        b = GraphTemplateBuilder()
        b.add_vertex("a", external_id=100)
        b.add_vertex("b", external_id=200)
        b.add_edge("a", "b", external_id=7)
        tpl = b.build()
        assert np.array_equal(tpl.vertex_ids, [100, 200])
        assert np.array_equal(tpl.edge_ids, [7])

    def test_schema_chaining(self):
        b = (
            GraphTemplateBuilder()
            .vertex_attribute("v", "float", default=1.0)
            .edge_attribute("w", "int")
        )
        b.add_vertex("a")
        tpl = b.build()
        assert "v" in tpl.vertex_schema
        assert tpl.vertex_schema["v"].default == 1.0
        assert "w" in tpl.edge_schema

    def test_vertex_index(self):
        b = GraphTemplateBuilder()
        b.add_vertex("x")
        b.add_vertex("y")
        assert b.vertex_index("y") == 1


class TestBuildCollection:
    def make_template(self):
        b = GraphTemplateBuilder().vertex_attribute("v", "float")
        b.add_vertex("a")
        b.add_vertex("b")
        b.add_edge("a", "b")
        return b.build()

    def test_eager_populate(self):
        tpl = self.make_template()

        def pop(inst, t):
            inst.vertex_values.set_column("v", np.full(2, float(t)))

        coll = build_collection(tpl, 3, pop, t0=1.0, delta=0.5)
        assert len(coll) == 3
        assert coll.instance(2).vertex("v", 0) == 2.0
        assert coll.instance(1).timestamp == 1.5

    def test_lazy_populate_called_on_access(self):
        tpl = self.make_template()
        calls = []

        def pop(inst, t):
            calls.append(t)

        coll = build_collection(tpl, 3, pop, lazy=True)
        assert calls == []
        coll.instance(1)
        assert calls == [1]

    def test_no_populator(self):
        tpl = self.make_template()
        coll = build_collection(tpl, 2)
        assert coll.instance(0).vertex("v", 0) == 0.0
