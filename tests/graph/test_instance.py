"""Unit tests for GraphInstance value storage and soft topology."""

import numpy as np
import pytest

from repro.graph import (
    IS_EXISTS,
    AttributeSchema,
    AttributeSpec,
    GraphInstance,
    GraphTemplate,
)


def template_with(vertex_attrs=(), edge_attrs=()):
    return GraphTemplate(
        4,
        [0, 1, 2],
        [1, 2, 3],
        vertex_schema=AttributeSchema(vertex_attrs),
        edge_schema=AttributeSchema(edge_attrs),
    )


class TestBasics:
    def test_default_tables(self):
        tpl = template_with([("v", "float")], [("w", "float")])
        inst = GraphInstance(tpl, 3.0)
        assert inst.timestamp == 3.0
        assert inst.vertex_values.n == 4
        assert inst.edge_values.n == 3

    def test_accessors(self):
        tpl = template_with([("v", "float")], [("w", "float")])
        inst = GraphInstance(tpl, 0.0)
        inst.vertex_values.set("v", 1, 7.0)
        inst.edge_values.set("w", 2, 9.0)
        assert inst.vertex("v", 1) == 7.0
        assert inst.edge("w", 2) == 9.0
        assert np.array_equal(inst.vertex_column("v"), [0, 7.0, 0, 0])
        assert np.array_equal(inst.edge_column("w"), [0, 0, 9.0])

    def test_row_count_mismatch(self):
        tpl = template_with([("v", "float")])
        bad = tpl.vertex_schema.create_table(3)
        with pytest.raises(ValueError, match="vertex_values"):
            GraphInstance(tpl, 0.0, vertex_values=bad)

    def test_edge_row_count_mismatch(self):
        tpl = template_with(edge_attrs=[("w", "float")])
        bad = tpl.edge_schema.create_table(2)
        with pytest.raises(ValueError, match="edge_values"):
            GraphInstance(tpl, 0.0, edge_values=bad)

    def test_copy_shares_template_not_values(self):
        tpl = template_with([("v", "float")])
        inst = GraphInstance(tpl, 1.0)
        inst.vertex_values.set("v", 0, 5.0)
        dup = inst.copy()
        dup.vertex_values.set("v", 0, 6.0)
        assert inst.vertex("v", 0) == 5.0
        assert dup.template is tpl

    def test_equals(self):
        tpl = template_with([("v", "float")])
        a, b = GraphInstance(tpl, 1.0), GraphInstance(tpl, 1.0)
        assert a.equals(b)
        b.vertex_values.set("v", 0, 1.0)
        assert not a.equals(b)
        assert not a.equals(GraphInstance(tpl, 2.0))


class TestExistsMasks:
    def test_all_true_without_attr(self):
        tpl = template_with()
        inst = GraphInstance(tpl, 0.0)
        assert inst.vertex_exists_mask().all()
        assert inst.edge_exists_mask().all()
        assert len(inst.vertex_exists_mask()) == 4
        assert len(inst.edge_exists_mask()) == 3

    def test_vertex_is_exists(self):
        tpl = template_with([AttributeSpec(IS_EXISTS, "bool", default=True)])
        inst = GraphInstance(tpl, 0.0)
        assert inst.vertex_exists_mask().all()
        inst.vertex_values.set(IS_EXISTS, 2, False)
        mask = inst.vertex_exists_mask()
        assert not mask[2] and mask[[0, 1, 3]].all()

    def test_edge_is_exists(self):
        tpl = template_with(edge_attrs=[AttributeSpec(IS_EXISTS, "bool", default=True)])
        inst = GraphInstance(tpl, 0.0)
        inst.edge_values.set(IS_EXISTS, 0, False)
        mask = inst.edge_exists_mask()
        assert not mask[0] and mask[1:].all()
