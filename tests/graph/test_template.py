"""Unit tests for GraphTemplate topology and CSR adjacency."""

import numpy as np
import pytest

from repro.graph import AttributeSchema, GraphTemplate


def path_template(n=5, directed=False):
    src = np.arange(n - 1)
    dst = src + 1
    return GraphTemplate(n, src, dst, directed=directed, name="path")


class TestConstruction:
    def test_basic_counts(self):
        tpl = path_template(5)
        assert tpl.num_vertices == 5
        assert tpl.num_edges == 4
        assert not tpl.directed

    def test_default_ids(self):
        tpl = path_template(4)
        assert np.array_equal(tpl.vertex_ids, np.arange(4))
        assert np.array_equal(tpl.edge_ids, np.arange(3))

    def test_endpoint_out_of_range(self):
        with pytest.raises(ValueError, match="out of range"):
            GraphTemplate(3, [0], [3])
        with pytest.raises(ValueError, match="out of range"):
            GraphTemplate(3, [-1], [0])

    def test_mismatched_endpoint_arrays(self):
        with pytest.raises(ValueError):
            GraphTemplate(3, [0, 1], [1])

    def test_negative_vertices(self):
        with pytest.raises(ValueError):
            GraphTemplate(-1, [], [])

    def test_bad_vertex_ids_length(self):
        with pytest.raises(ValueError, match="vertex_ids"):
            GraphTemplate(3, [0], [1], vertex_ids=np.arange(2))

    def test_bad_edge_ids_length(self):
        with pytest.raises(ValueError, match="edge_ids"):
            GraphTemplate(3, [0], [1], edge_ids=np.arange(2))

    def test_empty_graph(self):
        tpl = GraphTemplate(0, [], [])
        assert tpl.num_vertices == 0 and tpl.num_edges == 0
        assert tpl.stats()["avg_degree"] == 0.0


class TestUndirectedAdjacency:
    def test_both_directions_present(self):
        tpl = path_template(3)
        assert set(tpl.out_neighbors(1)) == {0, 2}
        assert set(tpl.out_neighbors(0)) == {1}

    def test_edge_index_shared_both_ways(self):
        tpl = path_template(3)
        # Edge 0 is (0,1): must appear once from 0 and once from 1.
        assert 0 in tpl.out_edges(0)
        assert 0 in tpl.out_edges(1)

    def test_degrees(self):
        tpl = path_template(4)
        assert np.array_equal(tpl.degrees, [1, 2, 2, 1])
        assert tpl.degree(1) == 2

    def test_self_loop_appears_once(self):
        tpl = GraphTemplate(2, [0, 0], [0, 1])
        assert list(tpl.out_neighbors(0)).count(0) == 1
        assert tpl.degree(0) == 2  # loop + edge to 1

    def test_in_equals_out(self):
        tpl = path_template(4)
        assert np.array_equal(np.sort(tpl.in_neighbors(1)), np.sort(tpl.out_neighbors(1)))


class TestDirectedAdjacency:
    def test_out_only_follows_direction(self):
        tpl = path_template(3, directed=True)
        assert set(tpl.out_neighbors(0)) == {1}
        assert set(tpl.out_neighbors(2)) == set()

    def test_in_neighbors(self):
        tpl = path_template(3, directed=True)
        assert set(tpl.in_neighbors(1)) == {0}
        assert set(tpl.in_neighbors(0)) == set()

    def test_degree_is_out_degree(self):
        tpl = path_template(3, directed=True)
        assert tpl.degree(2) == 0 and tpl.degree(0) == 1


class TestHelpers:
    def test_subgraph_edges(self):
        tpl = path_template(5)
        mask = np.array([True, True, True, False, False])
        edges = tpl.subgraph_edges(mask)
        assert set(edges) == {0, 1}  # (0,1) and (1,2)

    def test_undirected_edge_view(self):
        tpl = path_template(3)
        s, d = tpl.undirected_edge_view()
        assert np.array_equal(s, [0, 1]) and np.array_equal(d, [1, 2])

    def test_stats(self):
        stats = path_template(5).stats()
        assert stats["vertices"] == 5 and stats["edges"] == 4
        assert stats["avg_degree"] == pytest.approx(1.6)
        assert stats["max_degree"] == 2

    def test_equals(self):
        a, b = path_template(4), path_template(4)
        assert a.equals(b)
        c = path_template(5)
        assert not a.equals(c)

    def test_equals_schema_sensitive(self):
        a = path_template(3)
        b = GraphTemplate(3, [0, 1], [1, 2], vertex_schema=AttributeSchema(["x"]))
        assert not a.equals(b)

    def test_adjacency_csr_consistency(self, rng):
        # Every (src, dst, edge) triple in CSR matches the edge arrays.
        n, m = 30, 60
        src = rng.integers(0, n, m)
        dst = rng.integers(0, n, m)
        tpl = GraphTemplate(n, src, dst, directed=True)
        indptr, indices, eidx = tpl.adjacency
        for v in range(n):
            for slot in range(indptr[v], indptr[v + 1]):
                e = eidx[slot]
                assert tpl.edge_src[e] == v
                assert tpl.edge_dst[e] == indices[slot]
