"""Shared fixtures: small graphs, collections, and partitioned graphs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import (
    AttributeSchema,
    AttributeSpec,
    GraphTemplate,
    build_collection,
)
from repro.partition import HashPartitioner, partition_graph


def make_grid_template(rows: int, cols: int, *, name: str = "grid", with_attrs: bool = True) -> GraphTemplate:
    """A rows×cols undirected grid with latency/tweets/traffic schemas."""
    src, dst = [], []
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            if c + 1 < cols:
                src.append(v)
                dst.append(v + 1)
            if r + 1 < rows:
                src.append(v)
                dst.append(v + cols)
    vschema = (
        AttributeSchema(
            [
                AttributeSpec("tweets", "object"),
                AttributeSpec("traffic", "float"),
                AttributeSpec("flag", "bool"),
            ]
        )
        if with_attrs
        else None
    )
    eschema = AttributeSchema([AttributeSpec("latency", "float")]) if with_attrs else None
    return GraphTemplate(
        rows * cols, src, dst, name=name, vertex_schema=vschema, edge_schema=eschema
    )


def make_random_template(
    n: int,
    m: int,
    rng: np.random.Generator,
    *,
    directed: bool = False,
    name: str = "random",
) -> GraphTemplate:
    """A random simple graph with latency/tweets schemas (may be disconnected)."""
    pairs: set[tuple[int, int]] = set()
    guard = 0
    while len(pairs) < m and guard < 50 * m:
        guard += 1
        a, b = int(rng.integers(n)), int(rng.integers(n))
        if a == b:
            continue
        key = (a, b) if directed else (min(a, b), max(a, b))
        pairs.add(key)
    src, dst = zip(*sorted(pairs)) if pairs else ((), ())
    return GraphTemplate(
        n,
        np.asarray(src, dtype=np.int64),
        np.asarray(dst, dtype=np.int64),
        directed=directed,
        vertex_schema=AttributeSchema(
            [AttributeSpec("tweets", "object"), AttributeSpec("traffic", "float")]
        ),
        edge_schema=AttributeSchema([AttributeSpec("latency", "float")]),
        name=name,
    )


def populate_random(seed: int):
    """A deterministic populator for grid/random templates."""

    def _pop(inst, t):
        rng = np.random.default_rng(seed + t)
        n = inst.template.num_vertices
        m = inst.template.num_edges
        inst.edge_values.set_column("latency", rng.uniform(0.5, 8.0, m))
        inst.vertex_values.set_column("traffic", rng.uniform(0.0, 100.0, n))
        tweets = np.empty(n, dtype=object)
        for v in range(n):
            k = int(rng.integers(0, 3))
            tweets[v] = tuple(int(x) for x in rng.integers(0, 4, k))
        inst.vertex_values.set_column("tweets", tweets)

    return _pop


@pytest.fixture
def grid_template() -> GraphTemplate:
    return make_grid_template(5, 6)


@pytest.fixture
def grid_collection(grid_template):
    return build_collection(grid_template, 6, populate_random(11), delta=5.0)


@pytest.fixture
def grid_pg(grid_template):
    return partition_graph(grid_template, 3, HashPartitioner(seed=1))


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)
