"""Tests for CSV/JSON export of run artifacts."""

import csv
import json

import numpy as np
import pytest

from repro.analysis import (
    result_summary,
    write_csv,
    write_result_json,
    write_series_csv,
)
from repro.algorithms import TDSPComputation
from repro.core import run_application
from repro.generators import road_latency_collection
from repro.partition import HashPartitioner, partition_graph
from tests.conftest import make_grid_template


@pytest.fixture
def run():
    tpl = make_grid_template(4, 6)
    coll = road_latency_collection(tpl, 5, seed=3)
    pg = partition_graph(tpl, 2, HashPartitioner(seed=1))
    return run_application(TDSPComputation(0), pg, coll)


class TestWriteCsv:
    def test_roundtrip(self, tmp_path):
        rows = [{"a": 1, "b": np.float64(2.5)}, {"a": 3, "b": np.int64(4)}]
        path = write_csv(tmp_path / "t.csv", rows)
        with path.open() as fh:
            got = list(csv.DictReader(fh))
        assert got == [{"a": "1", "b": "2.5"}, {"a": "3", "b": "4"}]

    def test_explicit_columns(self, tmp_path):
        rows = [{"a": 1, "b": 2, "c": 3}]
        path = write_csv(tmp_path / "t.csv", rows, columns=["c", "a"])
        assert path.read_text().splitlines()[0] == "c,a"

    def test_empty(self, tmp_path):
        path = write_csv(tmp_path / "e.csv", [])
        assert path.read_text() == ""

    def test_creates_parents(self, tmp_path):
        path = write_csv(tmp_path / "x" / "y.csv", [{"a": 1}])
        assert path.exists()


class TestWriteSeriesCsv:
    def test_aligned_columns(self, tmp_path):
        path = write_series_csv(
            tmp_path / "s.csv", {"x": [1.0, 2.0, 3.0], "y": [9.0]}
        )
        lines = path.read_text().splitlines()
        assert lines[0] == "timestep,x,y"
        assert lines[1] == "0,1.0,9.0"
        assert lines[3] == "2,3.0,"

    def test_numpy_arrays(self, tmp_path):
        path = write_series_csv(tmp_path / "s.csv", {"x": np.arange(3)})
        assert path.read_text().splitlines()[-1] == "2,2"


class TestResultSummary:
    def test_fields(self, run):
        s = result_summary(run)
        assert s["timesteps_executed"] == run.timesteps_executed
        assert s["num_outputs"] == len(run.outputs)
        assert len(s["timestep_series_s"]) == run.timesteps_executed
        assert len(s["partitions"]) == 2
        assert s["metrics"]["supersteps"] > 0

    def test_json_serializable(self, run, tmp_path):
        path = write_result_json(tmp_path / "r.json", run, label="tdsp-test")
        data = json.loads(path.read_text())
        assert data["label"] == "tdsp-test"
        assert data["timesteps_executed"] == run.timesteps_executed
        # Round-trips cleanly (all plain types).
        json.dumps(data)

    def test_no_metrics(self):
        from repro.core import AppResult

        s = result_summary(AppResult(timesteps_executed=2))
        assert "metrics" not in s
        assert s["timesteps_executed"] == 2
