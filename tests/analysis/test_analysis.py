"""Tests for timeline/utilization extraction and text rendering."""

import numpy as np
import pytest

from repro.analysis import (
    frontier_matrix,
    frontier_totals,
    render_bar_chart,
    render_series,
    render_table,
    timestep_times,
    utilization_rows,
)
from repro.algorithms import TDSPComputation, MemeTrackingComputation
from repro.core import AppResult, run_application
from repro.generators import road_latency_collection, tweet_collection
from repro.partition import HashPartitioner, partition_graph
from tests.conftest import make_grid_template


@pytest.fixture
def tdsp_run():
    tpl = make_grid_template(6, 8)
    coll = road_latency_collection(tpl, 6, seed=2, delta=5.0)
    pg = partition_graph(tpl, 3, HashPartitioner(seed=1))
    res = run_application(TDSPComputation(0), pg, coll)
    return pg, coll, res


class TestTimeline:
    def test_timestep_times_length(self, tdsp_run):
        _pg, _coll, res = tdsp_run
        series = timestep_times(res)
        assert len(series) == res.timesteps_executed
        assert all(v >= 0 for v in series)

    def test_frontier_matrix_totals(self, tdsp_run):
        pg, _coll, res = tdsp_run
        M = frontier_matrix(res, pg)
        totals = frontier_totals(res)
        assert M.shape == (res.timesteps_executed, 3)
        assert np.array_equal(M.sum(axis=1), totals)
        # Everything reached in the run is accounted exactly once.
        reached = sum(len(rec.vertices) for _t, _sg, rec in res.outputs)
        assert M.sum() == reached

    def test_frontier_matrix_meme(self):
        tpl = make_grid_template(5, 5)
        coll = tweet_collection(tpl, 5, hit_probability=0.6, seed=3)
        pg = partition_graph(tpl, 2, HashPartitioner(seed=1))
        res = run_application(MemeTrackingComputation(0), pg, coll)
        M = frontier_matrix(res, pg)
        assert M.sum() == sum(rec.count for _t, _sg, rec in res.outputs)

    def test_no_metrics_raises(self):
        with pytest.raises(ValueError):
            timestep_times(AppResult())


class TestUtilization:
    def test_rows(self, tdsp_run):
        _pg, _coll, res = tdsp_run
        rows = utilization_rows(res)
        assert len(rows) == 3
        for r in rows:
            fractions = (
                r.compute_fraction
                + r.partition_overhead_fraction
                + r.sync_overhead_fraction
            )
            assert fractions == pytest.approx(1.0)
            assert set(r.as_row()) == {
                "partition",
                "compute_%",
                "partition_overhead_%",
                "sync_overhead_%",
                "compute_s",
            }

    def test_no_metrics_raises(self):
        with pytest.raises(ValueError):
            utilization_rows(AppResult())


class TestRendering:
    def test_table_alignment(self):
        out = render_table([{"a": 1, "bb": "xy"}, {"a": 222, "bb": "z"}], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert lines[1].startswith("a")
        assert len({len(l) for l in lines[1:3]}) <= 2
        assert "222" in out

    def test_table_empty(self):
        assert "(empty)" in render_table([], title="X")

    def test_series(self):
        out = render_series([1.0, 2.5], label="t", fmt="{:.1f}")
        assert out == "t: 1.0 2.5"

    def test_bar_chart(self):
        out = render_bar_chart([1.0, 2.0], ["a", "b"], width=10, title="bars")
        lines = out.splitlines()
        assert lines[0] == "bars"
        assert lines[2].count("#") == 10  # peak fills the width
        assert lines[1].count("#") == 5

    def test_bar_chart_empty(self):
        assert render_bar_chart([], title="t") == "t"

    def test_bar_chart_zero_values(self):
        out = render_bar_chart([0.0, 0.0])
        assert "#" not in out
