"""Edge cases for analysis/timeline.py: empty runs, ragged frontiers, padding."""

from dataclasses import dataclass

import numpy as np
import pytest

from repro.analysis import frontier_matrix, frontier_totals, timestep_times
from repro.core import AppResult
from repro.partition import HashPartitioner, partition_graph
from repro.runtime.metrics import MetricsCollector
from tests.conftest import make_grid_template


@dataclass(frozen=True)
class FakeFrontier:
    timestep: int
    count: int


@dataclass(frozen=True)
class NoCountRecord:
    timestep: int


@pytest.fixture
def pg():
    return partition_graph(make_grid_template(4, 4), 2, HashPartitioner(seed=1))


class TestEmptyResults:
    def test_timestep_times_requires_metrics(self):
        with pytest.raises(ValueError, match="no metrics"):
            timestep_times(AppResult())

    def test_timestep_times_empty_run(self):
        res = AppResult(metrics=MetricsCollector(2))
        assert timestep_times(res) == []

    def test_frontier_matrix_no_outputs(self, pg):
        res = AppResult(timesteps_executed=3)
        M = frontier_matrix(res, pg)
        assert M.shape == (3, 2)
        assert not M.any()

    def test_frontier_totals_zero_timesteps(self):
        res = AppResult()  # timesteps_executed defaults to 0
        assert frontier_totals(res).shape == (0,)


class TestRaggedFrontiers:
    def test_records_without_count_or_timestep_are_skipped(self, pg):
        res = AppResult(
            timesteps_executed=2,
            outputs=[
                (0, 0, FakeFrontier(timestep=0, count=4)),
                (0, 0, NoCountRecord(timestep=0)),  # no count attr
                (0, 1, "not a frontier record"),  # neither attr
            ],
        )
        M = frontier_matrix(res, pg)
        assert M.sum() == 4
        assert frontier_totals(res).tolist() == [4, 0]

    def test_out_of_range_timesteps_are_dropped(self, pg):
        res = AppResult(
            timesteps_executed=2,
            outputs=[
                (0, 0, FakeFrontier(timestep=5, count=3)),  # beyond T
                (0, 0, FakeFrontier(timestep=-1, count=3)),  # negative
                (1, 0, FakeFrontier(timestep=1, count=2)),
            ],
        )
        assert frontier_totals(res).tolist() == [0, 2]
        assert frontier_matrix(res, pg).sum() == 2

    def test_partition_attribution_follows_subgraph(self, pg):
        # emitting subgraph decides the column, not the tuple's timestep slot
        sgid = pg.subgraphs[-1].subgraph_id
        part = pg.subgraphs[sgid].partition_id
        res = AppResult(
            timesteps_executed=1,
            outputs=[(0, sgid, FakeFrontier(timestep=0, count=7))],
        )
        M = frontier_matrix(res, pg)
        assert M[0, part] == 7
        assert M.sum() == 7


class TestExplicitNumTimesteps:
    def test_padding_beyond_executed(self, pg):
        res = AppResult(
            timesteps_executed=1,
            outputs=[(0, 0, FakeFrontier(timestep=0, count=2))],
        )
        M = frontier_matrix(res, pg, num_timesteps=4)
        assert M.shape == (4, 2)
        assert M[0].sum() == 2 and not M[1:].any()
        assert frontier_totals(res, num_timesteps=4).tolist() == [2, 0, 0, 0]

    def test_truncation_below_executed(self, pg):
        res = AppResult(
            timesteps_executed=3,
            outputs=[
                (0, 0, FakeFrontier(timestep=0, count=1)),
                (2, 0, FakeFrontier(timestep=2, count=9)),  # beyond truncated T
            ],
        )
        totals = frontier_totals(res, num_timesteps=1)
        assert totals.tolist() == [1]
        assert frontier_matrix(res, pg, num_timesteps=1).sum() == 1

    def test_zero_is_valid(self, pg):
        res = AppResult(
            timesteps_executed=2,
            outputs=[(0, 0, FakeFrontier(timestep=0, count=1))],
        )
        assert frontier_matrix(res, pg, num_timesteps=0).shape == (0, 2)
        assert frontier_totals(res, num_timesteps=0).shape == (0,)

    def test_dtype_is_integral(self, pg):
        res = AppResult(timesteps_executed=1)
        assert frontier_matrix(res, pg).dtype == np.int64
