"""Ingest trace: spans/events from dataset build + partitioning, replayed."""

import numpy as np

from repro.analysis import crosscheck_ingest, ingest_phase_seconds, replay_ingest_breakdown
from repro.generators import DatasetCache, paper_datasets
from repro.observability.tracer import TracePacket, Tracer
from repro.partition import partition_graph
from repro.partition.metis_like import MetisLikePartitioner

SCALE = 2_000


def _traced_ingest(cache=None):
    tr = Tracer()
    data = paper_datasets(SCALE, 5, seed=1, cache=cache, tracer=tr)
    for name in ("CARN", "WIKI"):
        partition_graph(
            data[name]["template"], 4, MetisLikePartitioner(seed=1), cache=cache, tracer=tr
        )
    return tr.drain()


def test_spans_and_events_emitted():
    pkt = _traced_ingest()
    span_names = [s.name for s in pkt.spans]
    assert span_names.count("dataset_build") == 1
    assert span_names.count("partition") == 2
    kinds = [e["kind"] for e in pkt.events]
    assert kinds.count("partition") == 2
    assert kinds.count("dataset_build") == 3  # templates + collections x2


def test_breakdown_categories():
    pkt = _traced_ingest()
    breakdown = replay_ingest_breakdown(pkt.events)
    assert breakdown["generate"] > 0.0
    assert breakdown["partition"] > 0.0
    assert breakdown["cache"] == 0.0  # no cache in play
    phases = ingest_phase_seconds(pkt.events)
    assert set(phases) == {"templates", "collections_CARN", "collections_WIKI"}


def test_cache_traffic_replayed(tmp_path):
    cache = DatasetCache(tmp_path)
    _traced_ingest(cache=cache)  # cold: misses
    pkt = _traced_ingest(cache=cache)  # warm: hits only
    breakdown = replay_ingest_breakdown(pkt.events)
    assert breakdown["generate"] == 0.0  # nothing rebuilt
    assert breakdown["partition"] == 0.0
    assert breakdown["cache"] > 0.0


def test_crosscheck_clean():
    pkt = _traced_ingest()
    assert crosscheck_ingest(pkt) == []


def test_crosscheck_catches_missing_event():
    pkt = _traced_ingest()
    stripped = TracePacket(
        pkt.pid,
        pkt.label,
        pkt.spans,
        [e for e in pkt.events if e["kind"] != "partition"],
        pkt.counters,
    )
    problems = crosscheck_ingest(stripped, abs_tol=1e-4)
    assert any("partition" in p for p in problems)


def test_untraced_build_unchanged():
    """tracer=None must not change results (guarded hot path)."""
    with_trace = _traced_ingest()
    assert with_trace is not None
    a = paper_datasets(SCALE, 5, seed=1)
    b = paper_datasets(SCALE, 5, seed=1, tracer=Tracer())
    assert a["WIKI"]["template"].equals(b["WIKI"]["template"])
    pa = partition_graph(a["CARN"]["template"], 4, MetisLikePartitioner(seed=1))
    pb = partition_graph(
        b["CARN"]["template"], 4, MetisLikePartitioner(seed=1), tracer=Tracer()
    )
    assert np.array_equal(pa.vertex_partition, pb.vertex_partition)
