"""Critical-path attribution: synthetic arithmetic + crosschecks on real runs."""

import pytest

from repro.algorithms import TDSPComputation
from repro.analysis import (
    critical_path_report,
    crosscheck_critical_path,
    crosscheck_trace,
    format_critical_path_report,
)
from repro.core import EngineConfig, run_application
from repro.generators import road_latency_collection
from repro.partition import HashPartitioner, partition_graph
from repro.runtime.gc_model import GCModel
from repro.runtime.rebalance import GreedyRebalancer
from tests.conftest import make_grid_template

PARTITIONS = 3


def _step(t, s, p, compute_s, send_s=0.0):
    return {
        "kind": "step", "phase": "compute", "timestep": t, "superstep": s,
        "partition": p, "compute_s": compute_s, "send_s": send_s,
    }


def _load(t, p, seconds):
    return {"kind": "instance_load", "timestep": t, "partition": p,
            "seconds": seconds, "hidden_s": 0.0}


class TestSyntheticAttribution:
    def test_chain_follows_slowest_partition(self):
        events = [
            _load(0, 0, 0.3), _load(0, 1, 0.1),
            _step(0, 0, 0, 1.0, 0.2), _step(0, 0, 1, 0.5),
            _step(0, 1, 0, 0.1), _step(0, 1, 1, 0.8, 0.1),
        ]
        report = critical_path_report(events, 2, barrier_s=0.05)
        (entry,) = report["timesteps"]
        # s0 pinned by p0 (1.2 busy), s1 by p1 (0.9 busy); load peak on p0.
        assert [(c["superstep"], c["partition"]) for c in entry["chain"]] == [(0, 0), (1, 1)]
        seg = entry["segments"]
        assert seg["compute"] == pytest.approx(1.8)
        assert seg["send_flush"] == pytest.approx(0.3)
        assert seg["barrier"] == pytest.approx(0.1)
        assert seg["load"] == pytest.approx(0.3)
        assert entry["wall_s"] == pytest.approx(2.5)
        # p0 contributed 1.2 busy + 0.3 load = 1.5 of 2.5: the dominant host.
        assert entry["dominant_partition"] == 0
        assert entry["dominant_share"] == pytest.approx(1.5 / 2.5)
        rows = {r["partition"]: r for r in report["partitions"]}
        assert rows[0]["critical_supersteps"] == 1
        assert rows[0]["critical_loads"] == 1
        assert rows[1]["critical_busy_s"] == pytest.approx(0.9)
        assert report["stragglers"][0] == 0

    def test_ties_break_to_lowest_partition(self):
        events = [_step(0, 0, 1, 0.5), _step(0, 0, 0, 0.5)]
        report = critical_path_report(events, 2)
        assert report["timesteps"][0]["chain"][0]["partition"] == 0

    def test_rolled_back_work_is_purged(self):
        events = [
            _step(0, 0, 0, 1.0),
            _step(1, 0, 0, 9.0),  # the discarded attempt
            {"kind": "restore", "timestep": 1, "superstep": None,
             "seconds": 0.5, "resumed": False},
            _step(1, 0, 0, 2.0),  # the committed re-run
        ]
        report = critical_path_report(events, 1)
        walls = {e["timestep"]: e["wall_s"] for e in report["timesteps"]}
        assert walls[0] == pytest.approx(1.0)
        assert walls[1] == pytest.approx(2.5)  # re-run + recovery, not 9.0
        assert report["totals"]["recovery"] == pytest.approx(0.5)

    def test_format_report(self):
        events = [_step(0, 0, 0, 1.0), _step(0, 0, 1, 0.5)]
        text = format_critical_path_report(critical_path_report(events, 2))
        assert "critical path over 1 timesteps" in text
        assert "partition 0" in text
        assert "compute" in text


@pytest.fixture
def road_case():
    tpl = make_grid_template(5, 6)
    coll = road_latency_collection(tpl, 6, seed=2, delta=5.0)
    pg = partition_graph(tpl, PARTITIONS, HashPartitioner(seed=1))
    return tpl, coll, pg


class TestCrosscheck:
    @pytest.mark.parametrize("executor", ["serial", "thread"])
    def test_matches_replay_and_collector(self, road_case, executor):
        _tpl, coll, pg = road_case
        res = run_application(
            TDSPComputation(0), pg, coll,
            config=EngineConfig(executor=executor, tracing=True),
        )
        assert crosscheck_critical_path(res) == []

    def test_with_gc_and_rebalancing(self, road_case):
        _tpl, coll, pg = road_case
        res = run_application(
            TDSPComputation(0), pg, coll,
            config=EngineConfig(
                tracing=True, gc_model=GCModel(), rebalancer=GreedyRebalancer()
            ),
        )
        assert crosscheck_trace(res) == []
        assert crosscheck_critical_path(res) == []

    def test_requires_trace(self, road_case):
        _tpl, coll, pg = road_case
        res = run_application(TDSPComputation(0), pg, coll)
        with pytest.raises(ValueError, match="no trace"):
            crosscheck_critical_path(res)
