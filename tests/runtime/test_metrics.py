"""Tests for metrics derivations: superstep walls, timestep series, breakdowns."""

import pytest

from repro.runtime.metrics import (
    PHASE_COMPUTE,
    PHASE_MERGE,
    MetricsCollector,
    PartitionBreakdown,
    StepRecord,
)


def rec(t, s, p, compute, send=0.0, phase=PHASE_COMPUTE, computed=1, msgs=0, bts=0):
    return StepRecord(phase, t, s, p, compute, send, computed, msgs, bts)


class TestSuperstepWalls:
    def test_wall_is_max_busy_plus_barrier(self):
        m = MetricsCollector(2, barrier_s=0.1)
        m.record_step(rec(0, 0, 0, compute=1.0, send=0.5))
        m.record_step(rec(0, 0, 1, compute=2.0))
        walls = m.superstep_walls()
        assert walls[(PHASE_COMPUTE, 0, 0)] == pytest.approx(2.1)

    def test_timestep_wall_sums_supersteps(self):
        m = MetricsCollector(1)
        m.record_step(rec(0, 0, 0, 1.0))
        m.record_step(rec(0, 1, 0, 2.0))
        m.record_step(rec(1, 0, 0, 5.0))
        assert m.timestep_wall(0) == pytest.approx(3.0)
        assert m.timestep_wall(1) == pytest.approx(5.0)
        assert m.timestep_series() == [pytest.approx(3.0), pytest.approx(5.0)]

    def test_loads_and_gc_gate_on_slowest(self):
        m = MetricsCollector(2)
        m.record_step(rec(0, 0, 0, 1.0))
        m.record_step(rec(0, 0, 1, 1.0))
        m.record_load(0, 0, 0.2)
        m.record_load(0, 1, 0.7)
        m.record_gc(0, 0, 0.4)
        assert m.timestep_wall(0) == pytest.approx(1.0 + 0.7 + 0.4)

    def test_total_wall_includes_merge(self):
        m = MetricsCollector(1)
        m.record_step(rec(0, 0, 0, 1.0))
        m.record_step(rec(-1, 0, 0, 3.0, phase=PHASE_MERGE))
        assert m.merge_wall() == pytest.approx(3.0)
        assert m.total_wall() == pytest.approx(4.0)


class TestBreakdown:
    def test_sync_overhead_is_idle_time(self):
        m = MetricsCollector(2)
        m.record_step(rec(0, 0, 0, compute=1.0))
        m.record_step(rec(0, 0, 1, compute=3.0))
        b0, b1 = m.partition_breakdown()
        assert b0.compute_s == 1.0 and b1.compute_s == 3.0
        assert b0.sync_overhead_s == pytest.approx(2.0)  # waited for partition 1
        assert b1.sync_overhead_s == pytest.approx(0.0)

    def test_send_time_is_partition_overhead(self):
        m = MetricsCollector(1)
        m.record_step(rec(0, 0, 0, compute=1.0, send=0.25))
        (b,) = m.partition_breakdown()
        assert b.partition_overhead_s == 0.25
        cf, pf, sf = b.fractions()
        assert cf == pytest.approx(0.8)
        assert pf == pytest.approx(0.2)
        assert sf == 0.0

    def test_load_gc_idle_counted_as_sync(self):
        m = MetricsCollector(2)
        m.record_step(rec(0, 0, 0, 1.0))
        m.record_step(rec(0, 0, 1, 1.0))
        m.record_load(0, 0, 0.5)  # partition 1 waits 0.5 on partition 0's load
        b0, b1 = m.partition_breakdown()
        assert b1.sync_overhead_s == pytest.approx(0.5)
        assert b0.sync_overhead_s == pytest.approx(0.0)

    def test_fractions_of_empty(self):
        b = PartitionBreakdown(0, 0.0, 0.0, 0.0)
        assert b.fractions() == (0.0, 0.0, 0.0)

    def test_fractions_sum_to_one(self):
        m = MetricsCollector(3)
        for p, c in enumerate((1.0, 2.0, 0.5)):
            m.record_step(rec(0, 0, p, c, send=0.1 * p))
        for b in m.partition_breakdown():
            assert sum(b.fractions()) == pytest.approx(1.0)


class TestCounting:
    def test_summary_and_counts(self):
        m = MetricsCollector(1)
        m.record_step(rec(0, 0, 0, 1.0, msgs=4))
        m.record_step(rec(0, 1, 0, 1.0, msgs=2))
        m.record_step(rec(1, 0, 0, 1.0))
        m.record_step(rec(-1, 0, 0, 1.0, phase=PHASE_MERGE))
        assert m.total_messages() == 6
        assert m.total_supersteps() == 3 + 1
        assert m.num_timesteps_executed() == 2
        s = m.summary()
        assert s["timesteps"] == 2 and s["messages"] == 6
        assert s["supersteps"] == 4
        assert s["total_wall_s"] > 0

    def test_summary_traffic_and_boundary_totals(self):
        m = MetricsCollector(2)
        m.record_step(
            StepRecord(
                PHASE_COMPUTE, 0, 0, 0, 1.0, 0.1, 1, 10, 512,
                local_messages=6, remote_messages=4, frames_sent=2,
            )
        )
        m.record_step(
            StepRecord(
                PHASE_COMPUTE, 0, 0, 1, 1.0, 0.0, 1, 5, 256,
                local_messages=5, remote_messages=0, frames_sent=0,
            )
        )
        m.record_load(0, 0, 0.2)
        m.record_load(0, 1, 0.3)
        m.record_gc(0, 0, 0.05)
        m.record_migration(0, 3, 0.4)
        assert m.total_bytes_sent() == 768
        assert m.total_load_s() == pytest.approx(0.5)
        assert m.total_gc_s() == pytest.approx(0.05)
        assert m.total_migrations() == 3
        assert m.total_migration_s() == pytest.approx(0.4)
        assert m.cut_traffic_ratio() == pytest.approx(4 / 15)
        s = m.summary()
        assert s["bytes_sent"] == 768
        assert s["cut_traffic_ratio"] == pytest.approx(4 / 15, abs=1e-6)
        assert s["migrations"] == 3
        assert s["migration_s"] == pytest.approx(0.4)
        assert s["load_s"] == pytest.approx(0.5)
        assert s["gc_s"] == pytest.approx(0.05)

    def test_summary_ratio_zero_when_no_traffic(self):
        m = MetricsCollector(1)
        m.record_step(rec(0, 0, 0, 1.0))
        assert m.summary()["cut_traffic_ratio"] == 0.0
