"""Tests for the TCP socket cluster (auto-spawn, external workers, recovery).

ISSUE 9 tentpole: each ComputeHost runs as an independent process behind a
TCP connection — either auto-spawned on localhost or an externally launched
``tibsp worker`` — speaking the same seq/incarnation envelope protocol as
the pipe transport, so surgical recovery works across a real network hop.
"""

import threading

import pytest

from repro.core import EngineConfig, Pattern, run_application
from repro.resilience import CheckpointConfig, FaultPlan, RecoveryPolicy
from repro.runtime import (
    CollectionInstanceSource,
    RunMeta,
    SocketCluster,
    parse_hosts,
    serve_worker,
)

from .test_process_cluster import EmitSum, case  # noqa: F401  (fixture reuse)


@pytest.fixture
def external_workers():
    """Two persistent worker agents on OS-assigned localhost ports.

    Mimics operator-launched ``tibsp worker`` processes: each agent keeps
    accepting sessions after a kill severs one, which is what lets the
    driver respawn into the *same* address at a higher incarnation.
    """
    bound = []
    ready = threading.Event()

    def announce(addr):
        bound.append(f"{addr[0]}:{addr[1]}")
        if len(bound) == 2:
            ready.set()

    threads = [
        threading.Thread(
            target=serve_worker,
            args=(("127.0.0.1", 0),),
            kwargs={"announce": announce},
            daemon=True,
        )
        for _ in range(2)
    ]
    for t in threads:
        t.start()
    assert ready.wait(timeout=10), "workers never bound"
    yield tuple(bound)
    # Daemon threads; the accept loop dies with the test process.


class TestParseHosts:
    def test_parses_comma_list(self):
        assert parse_hosts("127.0.0.1:9000, 10.0.0.2:9001") == [
            ("127.0.0.1", 9000),
            ("10.0.0.2", 9001),
        ]

    def test_accepts_sequence(self):
        assert parse_hosts(["h1:1", "h2:2"]) == [("h1", 1), ("h2", 2)]

    def test_missing_port(self):
        with pytest.raises(ValueError, match="is not host:port"):
            parse_hosts("localhost")

    def test_non_integer_port(self):
        with pytest.raises(ValueError, match="non-integer port"):
            parse_hosts("localhost:http")

    def test_empty(self):
        with pytest.raises(ValueError, match="no worker addresses"):
            parse_hosts(" , ")


class TestAutoSpawn:
    def test_end_to_end_matches_serial(self, case):
        tpl, coll, pg, sources = case
        serial = run_application(EmitSum(), pg, coll)
        sock = run_application(
            EmitSum(), pg, coll, sources=sources,
            config=EngineConfig(executor="socket"),
        )
        assert serial.outputs == sock.outputs
        assert set(sock.states) == set(serial.states)

    def test_shutdown_idempotent(self, case):
        tpl, coll, pg, sources = case
        meta = RunMeta(Pattern.SEQUENTIALLY_DEPENDENT, 4, coll.delta, coll.t0)
        cluster = SocketCluster(pg, EmitSum(), meta, sources)
        cluster.shutdown()
        cluster.shutdown()  # second call is a no-op
        assert cluster._procs == []

    def test_hosts_count_must_match_partitions(self, case):
        tpl, coll, pg, sources = case
        meta = RunMeta(Pattern.SEQUENTIALLY_DEPENDENT, 4, coll.delta, coll.t0)
        with pytest.raises(ValueError, match="2 partitions"):
            SocketCluster(
                pg, EmitSum(), meta, sources, hosts="127.0.0.1:9000"
            )

    def test_connect_timeout_validated(self, case):
        tpl, coll, pg, sources = case
        meta = RunMeta(Pattern.SEQUENTIALLY_DEPENDENT, 4, coll.delta, coll.t0)
        with pytest.raises(ValueError, match="connect_timeout_s"):
            SocketCluster(
                pg, EmitSum(), meta, sources, connect_timeout_s=0.0
            )

    def test_surgical_recovery_over_sockets(self, case, tmp_path):
        """kill + drop_frame cured over TCP, bit-identical to fault-free."""
        tpl, coll, pg, sources = case
        baseline = run_application(
            EmitSum(), pg, coll,
            sources=[CollectionInstanceSource(coll) for _ in range(2)],
            config=EngineConfig(executor="socket"),
        )
        result = run_application(
            EmitSum(), pg, coll, sources=sources,
            config=EngineConfig(
                executor="socket",
                gather_timeout_s=0.5,
                checkpoint=CheckpointConfig(dir=tmp_path / "ck", every=1),
                faults=FaultPlan.parse("kill@t1:s0:p1,drop_frame@t2:p0", seed=13),
                recovery=RecoveryPolicy(backoff_s=0.0),
            ),
        )
        assert result.failure is None
        assert result.outputs == baseline.outputs
        assert result.states == baseline.states
        respawns = [
            a for a in result.recovery_actions if a.kind == "worker_respawn"
        ]
        assert [(a.partition, a.incarnation) for a in respawns] == [(1, 1)]
        assert result.protocol_stats["resends"] >= 1


class TestExternalWorkers:
    def test_run_against_external_workers(self, case, external_workers):
        tpl, coll, pg, sources = case
        serial = run_application(EmitSum(), pg, coll)
        sock = run_application(
            EmitSum(), pg, coll, sources=sources,
            config=EngineConfig(executor="socket", hosts=external_workers),
        )
        assert serial.outputs == sock.outputs

    def test_kill_respawns_into_same_address(self, case, external_workers, tmp_path):
        """A kill severs one session; the agent accepts the respawn."""
        tpl, coll, pg, sources = case
        result = run_application(
            EmitSum(), pg, coll, sources=sources,
            config=EngineConfig(
                executor="socket",
                hosts=external_workers,
                gather_timeout_s=0.5,
                checkpoint=CheckpointConfig(dir=tmp_path / "ck", every=1),
                faults=FaultPlan.parse("kill@t1:s0:p1", seed=7),
                recovery=RecoveryPolicy(backoff_s=0.0),
            ),
        )
        assert result.failure is None
        respawns = [
            a for a in result.recovery_actions if a.kind == "worker_respawn"
        ]
        assert [(a.partition, a.incarnation) for a in respawns] == [(1, 1)]

    def test_unreachable_host_fails_fast(self, case):
        from repro.runtime import WorkerLost

        tpl, coll, pg, sources = case
        meta = RunMeta(Pattern.SEQUENTIALLY_DEPENDENT, 4, coll.delta, coll.t0)
        # Port 1 on localhost: nothing listens, connect is refused instantly.
        with pytest.raises(WorkerLost, match="unreachable"):
            SocketCluster(
                pg, EmitSum(), meta, sources,
                hosts="127.0.0.1:1,127.0.0.1:1",
                connect_timeout_s=0.3,
            )
