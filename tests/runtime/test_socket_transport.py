"""Frame protocol over real sockets: the transport shared by pipe and TCP.

ISSUE 9 satellite: ``_send_oob``/``_recv_oob`` hardening (torn header,
short read mid-buffer, oversized frame) exercised over a real socketpair
— the same adapter the TCP workers and driver speak — parametrized against
the original ``mp.Pipe`` transport so both stay behaviorally identical.
"""

import multiprocessing as mp
import socket
import struct
import time

import numpy as np
import pytest

from repro.runtime import GatherTimeout, WorkerError
from repro.runtime.process_cluster import _recv_oob, _send_oob, _wait_readable
from repro.runtime.socket_cluster import _MAX_FRAME_BYTES, _SocketConn


@pytest.fixture(params=["pipe", "socket"])
def conns(request):
    """A connected (sender, receiver) pair over each transport."""
    if request.param == "pipe":
        a, b = mp.Pipe()
    else:
        sa, sb = socket.socketpair()
        a, b = _SocketConn(sa), _SocketConn(sb)
    yield a, b
    a.close()
    b.close()


class TestFrameProtocolAcrossTransports:
    """The PR 3 pipe-hardening contract, verified per transport."""

    def test_round_trip(self, conns):
        a, b = conns
        _send_oob(a, {"x": [1, 2, 3]})
        assert _recv_oob(b) == {"x": [1, 2, 3]}

    def test_numpy_oob_buffers_writeable(self, conns):
        a, b = conns
        _send_oob(a, np.arange(1000, dtype=np.int64))
        got = _recv_oob(b)
        assert got.tolist() == list(range(1000))
        got[0] = 42  # out-of-band buffers must come back writeable

    def test_truncated_header(self, conns):
        a, b = conns
        a.send_bytes(b"\x01")
        with pytest.raises(WorkerError, match="header is 1 bytes"):
            _recv_oob(b)

    def test_absurd_buffer_count(self, conns):
        a, b = conns
        a.send_bytes(struct.pack("<I", 1 << 30))
        with pytest.raises(WorkerError, match="declares 1073741824"):
            _recv_oob(b)

    def test_garbage_body(self, conns):
        a, b = conns
        a.send_bytes(struct.pack("<I", 0))
        a.send_bytes(b"not a pickle")
        with pytest.raises(WorkerError, match="failed to unpickle"):
            _recv_oob(b)

    def test_oversized_oob_buffer(self, conns):
        a, b = conns
        a.send_bytes(struct.pack("<IQ", 1, 4))  # declares 4 bytes
        a.send_bytes(struct.pack("<I", 0))  # any body
        a.send_bytes(b"123456789")  # ships 9
        with pytest.raises(WorkerError, match="larger than its declared"):
            _recv_oob(b)

    def test_deadline_times_out(self, conns):
        _a, b = conns
        start = time.monotonic()
        with pytest.raises(GatherTimeout, match="stuck reply"):
            _recv_oob(b, deadline=time.monotonic() + 0.05, what="stuck reply")
        assert time.monotonic() - start < 2.0


@pytest.fixture
def raw_pair():
    """A raw socketpair: one side speaks bytes, the other a _SocketConn."""
    sa, sb = socket.socketpair()
    yield sa, _SocketConn(sb)
    sa.close()
    sb.close()


class TestSocketFraming:
    """Byte-stream failure modes that pipes cannot produce."""

    def test_torn_length_prefix_is_eof(self, raw_pair):
        raw, conn = raw_pair
        raw.sendall(struct.pack("<Q", 100)[:4])  # half a length prefix
        raw.close()
        with pytest.raises(EOFError, match="mid-frame"):
            conn.recv_bytes()

    def test_short_read_mid_frame_is_eof(self, raw_pair):
        raw, conn = raw_pair
        raw.sendall(struct.pack("<Q", 100))  # declares 100 bytes
        raw.sendall(b"only-ten-b")  # ships 10, then dies
        raw.close()
        with pytest.raises(EOFError, match="mid-frame"):
            conn.recv_bytes()

    def test_short_read_mid_oob_buffer_is_eof(self, raw_pair):
        """A worker dying mid-buffer must not hang or mis-frame the recv."""
        raw, conn = raw_pair
        wire = _WireCapture()
        _send_oob(wire, np.arange(100, dtype=np.int64))
        header, body, buf = wire.frames
        for frame in (header, body):
            raw.sendall(struct.pack("<Q", len(frame)) + frame)
        raw.sendall(struct.pack("<Q", len(buf)) + bytes(buf[: len(buf) // 2]))
        raw.close()
        with pytest.raises(EOFError, match="mid-frame"):
            _recv_oob(conn)

    def test_oversized_transport_frame_rejected_before_allocation(self, raw_pair):
        raw, conn = raw_pair
        raw.sendall(struct.pack("<Q", _MAX_FRAME_BYTES + 1))
        with pytest.raises(WorkerError, match="desynced or corrupt"):
            conn.recv_bytes()

    def test_recv_bytes_into_buffer_too_short(self, raw_pair):
        raw, conn = raw_pair
        raw.sendall(struct.pack("<Q", 9) + b"123456789")
        with pytest.raises(mp.BufferTooShort) as exc_info:
            conn.recv_bytes_into(bytearray(4))
        assert exc_info.value.args[0] == b"123456789"

    def test_poll_sees_pending_data(self, raw_pair):
        raw, conn = raw_pair
        assert conn.poll(0) is False
        raw.sendall(b"x")
        assert conn.poll(0.5) is True


class _WireCapture:
    """Connection stand-in that records each send_bytes frame."""

    def __init__(self):
        self.frames = []

    def send_bytes(self, data):
        self.frames.append(bytes(data))


class TestWaitReadableAttribution:
    """ISSUE 9 satellite: the two timeout shapes are reported distinctly."""

    @pytest.fixture
    def pipe(self):
        a, b = mp.Pipe()
        yield a, b
        a.close()
        b.close()

    def test_expired_deadline_reported_as_expired(self, pipe):
        _a, b = pipe
        with pytest.raises(GatherTimeout, match="deadline already expired"):
            _wait_readable(b, time.monotonic() - 1.0, "reply")

    def test_poll_timeout_reported_as_poll_window(self, pipe):
        _a, b = pipe
        with pytest.raises(GatherTimeout, match="no data within .* poll window"):
            _wait_readable(b, time.monotonic() + 0.05, "reply")

    def test_expired_deadline_still_drains_ready_data(self, pipe):
        """A reply that already arrived is never spuriously timed out."""
        a, b = pipe
        a.send_bytes(b"ready")
        _wait_readable(b, time.monotonic() - 1.0, "reply")  # no raise
        assert b.recv_bytes() == b"ready"
