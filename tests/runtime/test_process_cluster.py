"""Tests for the process-per-partition cluster (pipes, errors, lifecycle)."""

import multiprocessing as mp
import time

import numpy as np
import pytest

from repro.core import EngineConfig, Pattern, TimeSeriesComputation, run_application
from repro.generators import road_latency_collection, road_network
from repro.partition import partition_graph
from repro.resilience import FaultPlan
from repro.runtime import CollectionInstanceSource, ProcessCluster, RunMeta
from repro.runtime.process_cluster import GatherTimeout, WorkerError


class EmitSum(TimeSeriesComputation):
    """Module-level (picklable) computation for worker processes."""

    pattern = Pattern.SEQUENTIALLY_DEPENDENT

    def compute(self, ctx):
        if ctx.superstep == 0:
            prev = sum(m.payload for m in ctx.messages) if ctx.messages else 0
            ctx.state["acc"] = prev + ctx.subgraph.num_vertices
        ctx.vote_to_halt()

    def end_of_timestep(self, ctx):
        ctx.send_to_next_timestep(ctx.state["acc"])
        ctx.output(ctx.state["acc"])


class BoomAtTimestep(TimeSeriesComputation):
    pattern = Pattern.SEQUENTIALLY_DEPENDENT

    def compute(self, ctx):
        if ctx.timestep == 1:
            raise ValueError("worker-side failure")
        ctx.vote_to_halt()


@pytest.fixture
def case():
    tpl = road_network(500, seed=8)
    coll = road_latency_collection(tpl, 4, seed=8)
    pg = partition_graph(tpl, 2)
    sources = [CollectionInstanceSource(coll) for _ in range(2)]
    return tpl, coll, pg, sources


class TestLifecycle:
    def test_end_to_end_matches_serial(self, case):
        tpl, coll, pg, sources = case
        serial = run_application(EmitSum(), pg, coll)
        proc = run_application(
            EmitSum(), pg, coll, sources=sources, config=EngineConfig(executor="process")
        )
        assert serial.outputs == proc.outputs
        assert set(proc.states) == set(serial.states)

    def test_shutdown_idempotent(self, case):
        tpl, coll, pg, sources = case
        meta = RunMeta(Pattern.SEQUENTIALLY_DEPENDENT, 4, coll.delta, coll.t0)
        cluster = ProcessCluster(pg, EmitSum(), meta, sources)
        cluster.shutdown()
        cluster.shutdown()  # second call is a no-op
        assert cluster._procs == []

    def test_source_count_validated(self, case):
        tpl, coll, pg, sources = case
        meta = RunMeta(Pattern.SEQUENTIALLY_DEPENDENT, 4, coll.delta, coll.t0)
        with pytest.raises(ValueError, match="instance source per partition"):
            ProcessCluster(pg, EmitSum(), meta, sources[:1])

    def test_resident_bytes_roundtrip(self, case):
        tpl, coll, pg, sources = case
        meta = RunMeta(Pattern.SEQUENTIALLY_DEPENDENT, 4, coll.delta, coll.t0)
        with ProcessCluster(pg, EmitSum(), meta, sources) as cluster:
            cluster.begin_timestep(0, [0.0, 0.0])
            resident = cluster.resident_bytes()
            assert len(resident) == 2
            assert all(b > 0 for b in resident)


class _FailSecondSpawnContext:
    """Multiprocessing-context stand-in whose 2nd Process creation fails.

    Wraps the real fork context so the first worker genuinely starts, then
    raises when the cluster constructor asks for the next one — the scenario
    where a partially constructed cluster used to leak live workers.
    """

    def __init__(self):
        self._real = mp.get_context("fork")
        self.started: list = []
        self._spawned = 0

    def Pipe(self):
        return self._real.Pipe()

    def Process(self, *args, **kwargs):
        self._spawned += 1
        if self._spawned >= 2:
            raise OSError("out of processes")
        proc = self._real.Process(*args, **kwargs)
        self.started.append(proc)
        return proc


class TestConstructorFailure:
    def test_started_workers_not_leaked(self, case):
        """A failing spawn mid-constructor must shut down earlier workers."""
        tpl, coll, pg, sources = case
        meta = RunMeta(Pattern.SEQUENTIALLY_DEPENDENT, 4, coll.delta, coll.t0)
        ctx = _FailSecondSpawnContext()
        with pytest.raises(OSError, match="out of processes"):
            ProcessCluster(pg, EmitSum(), meta, sources, mp_context=ctx)
        assert len(ctx.started) == 1
        ctx.started[0].join(timeout=5)
        assert not ctx.started[0].is_alive()


class TestGatherDeadlineIsPerRound:
    def test_round_shares_one_deadline(self, case):
        """ISSUE 9 regression: a gather round times out after one
        ``gather_timeout_s`` total, not one per partition.

        p0 replies late (0.5 s) but within the 0.8 s round budget; p1's
        reply is swallowed.  Under the old per-partition clocks p1's
        window only opened after p0's reply, pushing the failure past
        1.3 s; with a round deadline it fires at ~0.8 s.
        """
        tpl, coll, pg, sources = case
        meta = RunMeta(Pattern.SEQUENTIALLY_DEPENDENT, 4, coll.delta, coll.t0)
        cluster = ProcessCluster(
            pg, EmitSum(), meta, sources,
            gather_timeout_s=0.8,
            fault_plan=FaultPlan.parse(
                "delay@t0:begin:p0:d0.5,drop@t0:begin:p1", seed=1
            ),
        )
        try:
            start = time.monotonic()
            with pytest.raises(GatherTimeout):
                cluster.begin_timestep(0, [0.0, 0.0])
            elapsed = time.monotonic() - start
        finally:
            cluster.shutdown()
        assert elapsed >= 0.55, f"timed out before the round budget ({elapsed:.2f}s)"
        assert elapsed < 1.15, (
            f"round took {elapsed:.2f}s — looks like per-partition deadlines "
            "(worst case N x gather_timeout_s) regressed"
        )


class TestErrorPropagation:
    def test_worker_error_reraised_with_traceback(self, case):
        tpl, coll, pg, sources = case
        with pytest.raises(WorkerError, match="worker-side failure"):
            run_application(
                BoomAtTimestep(),
                pg,
                coll,
                sources=sources,
                config=EngineConfig(executor="process"),
            )
