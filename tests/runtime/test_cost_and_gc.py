"""Tests for the communication cost model and the GC pause model."""

import pytest

from repro.runtime import CostModel, GCModel


class TestCostModel:
    def test_remote_send_cost(self):
        cm = CostModel(remote_bandwidth_bytes_per_s=1000.0, remote_per_message_s=0.01)
        assert cm.remote_send_cost(0, 0) == 0.0
        assert cm.remote_send_cost(2, 500) == pytest.approx(2 * 0.01 + 0.5)

    def test_local_send_cost(self):
        cm = CostModel(local_per_message_s=0.001)
        assert cm.local_send_cost(5) == pytest.approx(0.005)
        assert cm.local_send_cost(0) == 0.0

    def test_barrier_cost(self):
        cm = CostModel(barrier_s=0.002)
        assert cm.barrier_cost(1) == 0.0  # no barrier on one host
        assert cm.barrier_cost(4) == 0.002

    def test_free_model(self):
        cm = CostModel.free()
        assert cm.remote_send_cost(1000, 10**9) == 0.0
        assert cm.local_send_cost(1000) == 0.0
        assert cm.barrier_cost(8) == 0.0

    def test_defaults_sane(self):
        cm = CostModel()
        # A single small remote message costs about the envelope overhead.
        assert 0 < cm.remote_send_cost(1, 16) < 1e-3
        # A 100 MiB transfer takes on the order of a second on 1 GbE.
        assert 0.5 < cm.remote_send_cost(1, 100 * 2**20) < 2.0


class TestGCModel:
    def test_disabled(self):
        gc = GCModel.disabled()
        assert not gc.enabled
        assert gc.pause_at(20, 2**30) == 0.0

    def test_interval_trigger(self):
        gc = GCModel(interval=20, pause_per_gib_s=1.0, min_pause_s=0.01)
        assert gc.pause_at(0, 2**30) == 0.0  # never at timestep 0
        assert gc.pause_at(19, 2**30) == 0.0
        assert gc.pause_at(20, 2**30) == pytest.approx(1.0)
        assert gc.pause_at(40, 2**30) == pytest.approx(1.0)
        assert gc.pause_at(21, 2**30) == 0.0

    def test_memory_pressure_scaling(self):
        """Fewer partitions → more resident data → longer pause (Fig 6)."""
        gc = GCModel(interval=20, pause_per_gib_s=2.0, min_pause_s=0.0)
        pause_3_parts = gc.pause_at(20, 3 * 2**30)  # data/3 hosts, say 3 GiB each
        pause_9_parts = gc.pause_at(20, 2**30)
        assert pause_3_parts > pause_9_parts

    def test_min_pause_floor(self):
        gc = GCModel(interval=10, pause_per_gib_s=1.0, min_pause_s=0.5)
        assert gc.pause_at(10, 1024) == 0.5
