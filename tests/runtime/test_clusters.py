"""Tests for hosts and cluster backends (serial / thread / process)."""

import numpy as np
import pytest

from repro.core import EngineConfig, Pattern, TimeSeriesComputation, run_application
from repro.generators import make_collection, road_latency_collection
from repro.graph import build_collection
from repro.partition import HashPartitioner, partition_graph
from repro.runtime import CollectionInstanceSource, CostModel, LocalCluster, RunMeta
from repro.runtime.cluster import build_hosts
from tests.conftest import make_grid_template


class EchoState(TimeSeriesComputation):
    """Deterministic computation used across all backends."""

    pattern = Pattern.SEQUENTIALLY_DEPENDENT

    def compute(self, ctx):
        if ctx.superstep == 0:
            carried = sum(m.payload for m in ctx.messages) if ctx.messages else 0
            ctx.state["total"] = carried + int(
                ctx.instance.edge_column("latency")[ctx.subgraph.edge_index].sum()
            )
            # Ping a neighbor subgraph to exercise superstep messaging.
            nbrs = ctx.subgraph.neighbor_subgraphs
            if len(nbrs):
                ctx.send_to_subgraph(int(nbrs[0]), 0)
        ctx.vote_to_halt()

    def end_of_timestep(self, ctx):
        ctx.send_to_next_timestep(ctx.state["total"])
        if ctx.timestep == ctx.num_timesteps - 1:
            ctx.output(ctx.state["total"])


def run_backend(executor):
    tpl = make_grid_template(4, 6)
    coll = road_latency_collection(tpl, 5, seed=9, delta=5.0)
    pg = partition_graph(tpl, 3, HashPartitioner(seed=1))
    sources = None
    if executor == "process":
        # Picklable generator-backed per-partition sources.
        from repro.runtime import InstanceSource

        sources = [CollectionInstanceSource(coll) for _ in range(3)]
    res = run_application(
        EchoState(),
        pg,
        coll,
        config=EngineConfig(executor=executor),
        sources=sources,
    )
    return {sg: rec for _t, sg, rec in res.outputs}


class TestBackendEquivalence:
    def test_thread_matches_serial(self):
        assert run_backend("thread") == run_backend("serial")

    def test_process_matches_serial(self):
        assert run_backend("process") == run_backend("serial")


class TestLocalCluster:
    def make(self, executor="serial"):
        tpl = make_grid_template(3, 4)
        coll = build_collection(tpl, 2)
        pg = partition_graph(tpl, 2, HashPartitioner(seed=1))
        meta = RunMeta(Pattern.SEQUENTIALLY_DEPENDENT, 2, 1.0, 0.0)

        class Noop(TimeSeriesComputation):
            def compute(self, ctx):
                ctx.vote_to_halt()

        return LocalCluster(pg, Noop(), meta, collection=coll, executor=executor), pg

    def test_requires_collection_or_sources(self):
        tpl = make_grid_template(3, 3)
        pg = partition_graph(tpl, 2, HashPartitioner(seed=1))
        meta = RunMeta(Pattern.INDEPENDENT, 1, 1.0, 0.0)

        class Noop(TimeSeriesComputation):
            def compute(self, ctx):
                ctx.vote_to_halt()

        with pytest.raises(ValueError, match="sources or a collection"):
            LocalCluster(pg, Noop(), meta)

    def test_unknown_executor(self):
        with pytest.raises(ValueError, match="unknown executor"):
            self.make("warp")

    def test_context_manager_shutdown(self):
        cluster, _ = self.make("thread")
        with cluster as c:
            assert c is cluster
        assert cluster._pool is None

    def test_protocol_flow(self):
        cluster, pg = self.make()
        begin = cluster.begin_timestep(0, [0.0, 0.0])
        assert {r.partition for r in begin} == {0, 1}
        step = cluster.run_superstep(0, 0, [{}, {}])
        assert all(r.all_halted for r in step)
        assert sum(r.subgraphs_computed for r in step) == pg.num_subgraphs
        eot = cluster.end_of_timestep(0)
        assert len(eot) == 2
        assert len(cluster.resident_bytes()) == 2
        states = cluster.final_states()
        assert set(states) == {sg.subgraph_id for sg in pg.subgraphs}


class TestShutdownClosesSources:
    def test_run_shutdown_closes_prefetch_views(self, tmp_path):
        """The engine's end-of-run cluster shutdown must release every
        GoFS view's prefetch thread (REVIEW: long-lived drivers were
        accumulating idle gofs-prefetch threads)."""
        from repro.storage import GoFS

        tpl = make_grid_template(4, 6)
        coll = road_latency_collection(tpl, 12, seed=9, delta=5.0)
        pg = partition_graph(tpl, 3, HashPartitioner(seed=1))
        GoFS.write_collection(tmp_path, pg, coll, packing=4)
        views = GoFS.partition_views(tmp_path, prefetch=True)
        res = run_application(EchoState(), pg, coll, sources=views)
        assert res.timesteps_executed == 12
        assert any(v.prefetch_started > 0 for v in views)  # pools existed
        assert all(v._pool is None for v in views)  # ... and were closed


class TestBuildHosts:
    def test_source_count_validated(self):
        tpl = make_grid_template(3, 3)
        pg = partition_graph(tpl, 2, HashPartitioner(seed=1))
        coll = build_collection(tpl, 1)
        meta = RunMeta(Pattern.INDEPENDENT, 1, 1.0, 0.0)

        class Noop(TimeSeriesComputation):
            def compute(self, ctx):
                ctx.vote_to_halt()

        with pytest.raises(ValueError, match="one instance source per partition"):
            build_hosts(pg, Noop(), meta, [CollectionInstanceSource(coll)], CostModel())


class TestHostAccounting:
    def test_remote_vs_local_send_costs(self):
        """Messages between partitions must cost more than local ones."""
        tpl = make_grid_template(4, 4)
        coll = build_collection(tpl, 1)
        pg = partition_graph(tpl, 2, HashPartitioner(seed=1))
        # Find one subgraph with a remote neighbor and one local pair.
        sg = next(s for s in pg.subgraphs if len(s.neighbor_subgraphs))

        class SendRemote(TimeSeriesComputation):
            pattern = Pattern.INDEPENDENT

            def compute(self, ctx):
                if ctx.superstep == 0 and ctx.subgraph.subgraph_id == sg.subgraph_id:
                    for nbr in ctx.subgraph.neighbor_subgraphs:
                        ctx.send_to_subgraph(int(nbr), np.zeros(100))
                ctx.vote_to_halt()

        cost = CostModel(remote_per_message_s=1e-3, local_per_message_s=1e-9)
        res = run_application(
            SendRemote(), pg, coll, config=EngineConfig(cost_model=cost)
        )
        sends = [r for r in res.metrics.step_records if r.messages_sent]
        assert sends, "expected at least one send record"
        remote_sends = [r for r in sends if r.bytes_sent > 0]
        assert remote_sends
        assert all(r.send_s >= 1e-3 for r in remote_sends)


class TestMergeProtocol:
    def test_merge_superstep0_rejects_deliveries(self):
        """Superstep 0 reads the merge inbox; stray deliveries must fail loudly."""
        from repro.core.messages import Message

        tpl = make_grid_template(3, 3)
        coll = build_collection(tpl, 1)
        pg = partition_graph(tpl, 2, HashPartitioner(seed=1))

        class Noop(TimeSeriesComputation):
            pattern = Pattern.EVENTUALLY_DEPENDENT

            def compute(self, ctx):
                ctx.vote_to_halt()

            def merge(self, ctx):
                ctx.vote_to_halt()

        meta = RunMeta(Pattern.EVENTUALLY_DEPENDENT, 1, 1.0, 0.0)
        cluster = LocalCluster(pg, Noop(), meta, collection=coll)
        host = cluster.hosts[0]
        sgid = host.partition.subgraphs[0].subgraph_id
        with pytest.raises(RuntimeError, match="merge superstep 0"):
            host.run_merge_superstep(0, {sgid: [Message("stray")]})
