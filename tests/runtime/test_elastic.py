"""Tests for elastic VM scaling analysis (Section IV-D suggestion)."""

import numpy as np
import pytest

from repro.core import AppResult
from repro.runtime import ElasticPolicy, activity_grid, simulate_elastic
from repro.runtime.metrics import PHASE_COMPUTE, MetricsCollector, StepRecord


def make_result(compute_grid: np.ndarray) -> AppResult:
    """Synthesize an AppResult whose per-(timestep, partition) compute is given."""
    T, P = compute_grid.shape
    m = MetricsCollector(P)
    for t in range(T):
        for p in range(P):
            m.record_step(
                StepRecord(
                    PHASE_COMPUTE, t, 0, p, float(compute_grid[t, p]), 0.0, 1, 0, 0
                )
            )
    return AppResult(metrics=m, timesteps_executed=T)


class TestActivityGrid:
    def test_thresholding(self):
        compute = np.array(
            [
                [1.0, 0.001, 0.5],  # partition 1 negligible vs peak 1.0
                [0.0, 2.0, 2.0],
            ]
        )
        res = make_result(compute)
        grid = activity_grid(res, rel_threshold=0.05)
        assert grid.tolist() == [[True, False, True], [False, True, True]]

    def test_all_zero_timestep(self):
        res = make_result(np.zeros((2, 2)))
        grid = activity_grid(res)
        assert not grid.any()

    def test_invalid_threshold(self):
        res = make_result(np.ones((1, 1)))
        with pytest.raises(ValueError):
            activity_grid(res, rel_threshold=2.0)

    def test_no_metrics(self):
        with pytest.raises(ValueError):
            activity_grid(AppResult())


class TestPolicyValidation:
    def test_bad_params(self):
        with pytest.raises(ValueError):
            ElasticPolicy(idle_timesteps=0)
        with pytest.raises(ValueError):
            ElasticPolicy(spinup_penalty_s=-1)
        with pytest.raises(ValueError):
            ElasticPolicy(prefetch=-1)


class TestSimulateElastic:
    def wave_grid(self):
        """Partition 0 active t=0..3; partition 1 active t=6..9 (a wave)."""
        compute = np.zeros((10, 2))
        compute[0:4, 0] = 1.0
        compute[6:10, 1] = 1.0
        return compute

    def test_on_demand_start(self):
        res = make_result(self.wave_grid())
        out = simulate_elastic(res, ElasticPolicy(idle_timesteps=2, prefetch=1))
        # Partition 1 is powered from t=5 (prefetch 1 before first use at 6).
        assert not out.powered[0:5, 1].any()
        assert out.powered[5:10, 1].all()
        assert out.spinups >= 1

    def test_spin_down_after_idle(self):
        res = make_result(self.wave_grid())
        out = simulate_elastic(res, ElasticPolicy(idle_timesteps=2, prefetch=0))
        # Partition 0 idles from t=4; off from t=4+2=6 (t=4,5 still billed).
        assert out.powered[4:6, 0].all()
        assert not out.powered[6:10, 0].any()

    def test_never_off_while_active(self):
        rng = np.random.default_rng(0)
        compute = rng.random((20, 4)) * (rng.random((20, 4)) > 0.5)
        res = make_result(compute)
        grid = activity_grid(res)
        for policy in (ElasticPolicy(1, 10.0, 0), ElasticPolicy(3, 10.0, 2)):
            out = simulate_elastic(res, policy)
            assert out.powered[grid].all()

    def test_billing_math(self):
        res = make_result(self.wave_grid())
        out = simulate_elastic(res, ElasticPolicy(idle_timesteps=2, prefetch=1))
        assert out.vm_timesteps_static == 20
        assert out.vm_timesteps_elastic == int(out.powered.sum())
        assert out.savings_fraction == pytest.approx(
            1 - out.vm_timesteps_elastic / 20
        )
        # Partition 0 cold-boots at t=0 (free vs the static baseline);
        # partition 1's delayed first boot at t=5 pays the penalty.
        assert out.spinups == 2
        assert out.added_wall_s == pytest.approx(30.0)

    def test_never_touched_partition_never_boots(self):
        compute = np.zeros((5, 2))
        compute[:, 0] = 1.0
        res = make_result(compute)
        out = simulate_elastic(res)
        assert not out.powered[:, 1].any()
        assert out.savings_fraction == pytest.approx(0.5)

    def test_wave_saves_more_than_uniform(self):
        wave = make_result(self.wave_grid())
        uniform = make_result(np.ones((10, 2)))
        policy = ElasticPolicy(idle_timesteps=2)
        assert (
            simulate_elastic(wave, policy).savings_fraction
            > simulate_elastic(uniform, policy).savings_fraction
        )

    def test_cold_boot_at_t0_counts_as_spinup(self):
        """Regression: a partition first active at t=0 boots with zero lead,
        but the boot is still a spin-up — the tracer logs it as vm_spinup
        and the counter must agree.  It adds no wall, though: the static
        always-on baseline pays the same initial boot."""
        compute = np.ones((4, 2))
        res = make_result(compute)
        out = simulate_elastic(res, ElasticPolicy(idle_timesteps=2, prefetch=1))
        assert out.spinups == 2  # both partitions cold-boot at t=0
        assert out.added_wall_s == 0.0

    def test_added_wall_excludes_t0_boots_but_charges_wakeups(self):
        """added_wall_s is latency added *vs static*: a t=0 cold boot is
        free (static boots then too), while a delayed first boot and every
        mid-run wake-up pay the penalty."""
        compute = np.zeros((12, 2))
        compute[0:2, 0] = 1.0   # partition 0: boots at t=0 ...
        compute[8:10, 0] = 1.0  # ... idles, wakes again at t=8
        compute[5:7, 1] = 1.0   # partition 1: first boot mid-run
        res = make_result(compute)
        policy = ElasticPolicy(idle_timesteps=2, prefetch=1, spinup_penalty_s=30.0)
        out = simulate_elastic(res, policy)
        assert out.spinups == 3
        assert out.added_wall_s == pytest.approx(2 * 30.0)

    def test_spinups_match_traced_vm_spinup_events(self):
        class StubTracer:
            def __init__(self):
                self.events = []

            def event(self, kind, **fields):
                self.events.append((kind, fields))

        gap = np.zeros((10, 1))  # idle stretch: spin down, then wake again
        gap[0:2, 0] = 1.0
        gap[7:9, 0] = 1.0
        for grid in (self.wave_grid(), np.ones((4, 2)), gap):
            res = make_result(grid)
            for policy in (
                ElasticPolicy(idle_timesteps=2, prefetch=1),
                ElasticPolicy(idle_timesteps=1, prefetch=0),
            ):
                tracer = StubTracer()
                out = simulate_elastic(res, policy, tracer=tracer)
                booted = sum(
                    1 for kind, _f in tracer.events if kind == "vm_spinup"
                )
                t0_boots = sum(
                    1
                    for kind, f in tracer.events
                    if kind == "vm_spinup" and f["timestep"] == 0
                )
                assert out.spinups == booted
                assert out.added_wall_s == pytest.approx(
                    (out.spinups - t0_boots) * policy.spinup_penalty_s
                )

    def test_end_to_end_tdsp(self):
        """Real TDSP run: wave leaves pre-arrival windows to harvest."""
        from repro.algorithms import TDSPComputation
        from repro.core import run_application
        from repro.generators import road_latency_collection, road_network
        from repro.partition import partition_graph

        tpl = road_network(2500, seed=2)
        coll = road_latency_collection(tpl, 30, seed=2)
        pg = partition_graph(tpl, 5)
        res = run_application(
            TDSPComputation(0, halt_when_stalled=True, root_pruning=False), pg, coll
        )
        out = simulate_elastic(res, ElasticPolicy(idle_timesteps=2))
        assert 0.0 <= out.savings_fraction < 1.0
        assert out.powered[activity_grid(res)].all()
