"""Tests for dynamic subgraph rebalancing (Section IV-D research opportunity)."""

import numpy as np
import pytest

from repro.algorithms import TDSPComputation, tdsp_labels_from_result
from repro.algorithms.reference import time_expanded_dijkstra
from repro.core import EngineConfig, run_application
from repro.generators import road_latency_collection
from repro.partition import HashPartitioner, partition_graph
from repro.runtime import CostModel, GreedyRebalancer, Migration, apply_migrations
from repro.runtime.rebalance import _state_nbytes
from tests.conftest import make_grid_template


class TestGreedyPolicy:
    def make_subgraph_lists(self):
        # partition 0: one big + two small; partition 1: one medium.
        return [[(0, 100), (1, 5), (2, 8)], [(3, 40)]]

    def test_no_moves_when_balanced(self):
        policy = GreedyRebalancer(imbalance_threshold=1.5)
        moves = policy.decide(np.array([1.0, 1.1]), self.make_subgraph_lists())
        assert moves == []
        assert policy.history == [[]]

    def test_moves_small_subgraphs_from_busiest(self):
        policy = GreedyRebalancer(imbalance_threshold=1.2, max_moves_per_timestep=2)
        moves = policy.decide(np.array([10.0, 1.0]), self.make_subgraph_lists())
        assert [m.subgraph_id for m in moves] == [1, 2]  # smallest first
        assert all(m.source_partition == 0 and m.target_partition == 1 for m in moves)

    def test_never_moves_dominant_subgraph(self):
        policy = GreedyRebalancer(imbalance_threshold=1.2, max_moves_per_timestep=5)
        moves = policy.decide(np.array([10.0, 1.0]), self.make_subgraph_lists())
        assert 0 not in [m.subgraph_id for m in moves]

    def test_keeps_at_least_one_subgraph(self):
        policy = GreedyRebalancer(imbalance_threshold=1.2, max_moves_per_timestep=5)
        moves = policy.decide(np.array([10.0, 1.0]), [[(7, 3)], [(8, 50)]])
        assert moves == []  # the only subgraph stays


class TestApplyMigrations:
    def test_moves_state_and_updates_routing(self):
        from repro.core import Pattern, TimeSeriesComputation
        from repro.graph import build_collection
        from repro.runtime import LocalCluster, RunMeta

        tpl = make_grid_template(4, 4)
        coll = build_collection(tpl, 1)
        pg = partition_graph(tpl, 2, HashPartitioner(seed=1))

        class Noop(TimeSeriesComputation):
            def compute(self, ctx):
                ctx.vote_to_halt()

        meta = RunMeta(Pattern.SEQUENTIALLY_DEPENDENT, 1, 1.0, 0.0)
        cluster = LocalCluster(pg, Noop(), meta, collection=coll)
        sg = cluster.hosts[0].partition.subgraphs[0]
        sgid = sg.subgraph_id
        cluster.hosts[0].states[sgid]["marker"] = 42
        routing = cluster.hosts[0].subgraph_partition
        cost = apply_migrations(
            cluster, [Migration(sgid, 0, 1)], routing, CostModel()
        )
        assert cost > 0
        assert sgid in cluster.hosts[1].states
        assert cluster.hosts[1].states[sgid]["marker"] == 42
        assert sgid not in cluster.hosts[0].states
        assert routing[sgid] == 1
        # Both hosts see the same routing array.
        assert cluster.hosts[1].subgraph_partition[sgid] == 1

    def test_unknown_subgraph_raises(self):
        from repro.core import Pattern, TimeSeriesComputation
        from repro.graph import build_collection
        from repro.runtime import LocalCluster, RunMeta

        tpl = make_grid_template(3, 3)
        coll = build_collection(tpl, 1)
        pg = partition_graph(tpl, 2, HashPartitioner(seed=1))

        class Noop(TimeSeriesComputation):
            def compute(self, ctx):
                ctx.vote_to_halt()

        cluster = LocalCluster(
            pg, Noop(), RunMeta(Pattern.INDEPENDENT, 1, 1.0, 0.0), collection=coll
        )
        with pytest.raises(KeyError):
            apply_migrations(
                cluster,
                [Migration(99, 0, 1)],
                cluster.hosts[0].subgraph_partition,
                CostModel(),
            )

    def test_state_nbytes(self):
        assert _state_nbytes({"a": np.zeros(10)}) == 80
        assert _state_nbytes({"b": [1, 2, 3]}) == 96
        assert _state_nbytes({"c": 5}) == 16


class ScriptedPolicy:
    """Rebalance policy that emits a fixed move list once, then nothing."""

    def __init__(self, moves):
        self._pending = list(moves)
        self.history = []

    def decide(self, busy, partition_subgraphs):
        moves, self._pending = self._pending, []
        self.history.append(moves)
        return moves


class TestTemporalRoutingAfterMigration:
    def test_remote_temporal_message_follows_migrated_subgraph(self):
        """A buffered temporal frame must be re-routed after migrations.

        Regression: frames carried the destination partition computed at
        pack time (the previous timestep); when the rebalancer migrated the
        destination subgraph between timesteps, the driver shipped the frame
        to the old host, which silently dropped it.
        """
        from repro.core import Pattern, TimeSeriesComputation
        from repro.graph import build_collection

        tpl = make_grid_template(4, 4)
        coll = build_collection(tpl, 2)
        pg = partition_graph(tpl, 2, HashPartitioner(seed=1))
        by_part = {}
        for sg in pg.subgraphs:
            by_part.setdefault(sg.partition_id, []).append(sg.subgraph_id)
        # src on partition 0 pings dst on partition 1 across the timestep
        # boundary; the policy migrates dst onto partition 0 at that boundary.
        src, dst = by_part[0][0], by_part[1][0]

        class CrossPing(TimeSeriesComputation):
            pattern = Pattern.SEQUENTIALLY_DEPENDENT

            def compute(self, ctx):
                got = [m.payload for m in ctx.messages]
                if got:
                    ctx.state.setdefault("got", []).extend(got)
                if ctx.subgraph.subgraph_id == src:
                    ctx.send_to_subgraph_in_next_timestep(dst, ("ping", ctx.timestep))
                ctx.vote_to_halt()

        policy = ScriptedPolicy([Migration(dst, 1, 0)])
        res = run_application(
            CrossPing(), pg, coll, config=EngineConfig(rebalancer=policy)
        )
        assert policy.history and policy.history[0], "the migration must happen"
        assert res.states[dst].get("got") == [("ping", 0)]


class TestEndToEnd:
    def test_rebalanced_tdsp_correct(self):
        from repro.generators import road_network

        tpl = road_network(1500, seed=4)
        coll = road_latency_collection(tpl, 15, seed=4)
        pg = partition_graph(tpl, 3)
        policy = GreedyRebalancer(imbalance_threshold=1.2)
        res = run_application(
            TDSPComputation(0, root_pruning=False),
            pg,
            coll,
            config=EngineConfig(rebalancer=policy),
        )
        got = tdsp_labels_from_result(res, tpl.num_vertices)
        want = time_expanded_dijkstra(coll, 0)
        np.testing.assert_allclose(
            np.nan_to_num(got, posinf=1e18), np.nan_to_num(want, posinf=1e18)
        )
        # The policy was consulted once per timestep boundary.
        assert len(policy.history) == res.timesteps_executed - 1
        # Migrations recorded in metrics with their transfer cost.
        moved = sum(len(m) for m in policy.history)
        assert sum(res.metrics.migrations.values()) == moved
        if moved:
            assert sum(res.metrics.migration_s.values()) > 0

    def test_source_partition_not_mutated(self):
        from repro.generators import road_network

        tpl = road_network(800, seed=5)
        coll = road_latency_collection(tpl, 10, seed=5)
        pg = partition_graph(tpl, 3)
        before = [p.num_subgraphs for p in pg.partitions]
        run_application(
            TDSPComputation(0, root_pruning=False),
            pg,
            coll,
            config=EngineConfig(rebalancer=GreedyRebalancer(imbalance_threshold=1.1)),
        )
        assert [p.num_subgraphs for p in pg.partitions] == before

    def test_process_executor_rejected(self):
        from repro.generators import road_network
        from repro.runtime import CollectionInstanceSource

        tpl = road_network(400, seed=6)
        coll = road_latency_collection(tpl, 4, seed=6)
        pg = partition_graph(tpl, 2)
        config = EngineConfig(
            executor="process", rebalancer=GreedyRebalancer(imbalance_threshold=0.5)
        )
        sources = [CollectionInstanceSource(coll) for _ in range(2)]
        with pytest.raises(NotImplementedError, match="in-process"):
            run_application(TDSPComputation(0), pg, coll, config=config, sources=sources)

    def test_gofs_sources_rejected(self, tmp_path):
        """Partitioned GoFS views would break migrated subgraphs — refuse."""
        from repro.generators import road_network
        from repro.storage import GoFS

        tpl = road_network(400, seed=7)
        coll = road_latency_collection(tpl, 4, seed=7)
        pg = partition_graph(tpl, 2)
        GoFS.write_collection(tmp_path, pg, coll)
        config = EngineConfig(rebalancer=GreedyRebalancer(imbalance_threshold=1.0))
        with pytest.raises(NotImplementedError, match="whole-instance"):
            run_application(
                TDSPComputation(0, root_pruning=False),
                pg,
                coll,
                sources=GoFS.partition_views(tmp_path),
                config=config,
            )
