"""Unit tests for the shared kernel plane (``repro.kernels``).

Each kernel is checked against a transparent scalar model on randomized
inputs — CSR gathers vs explicit loops, fixpoint relaxation vs Dijkstra,
component labeling vs scipy, aggregation vs per-cell Python counting.
"""

import heapq

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.kernels import (
    contains_in_cells,
    count_equal,
    count_equal_in_cells,
    csr_components,
    expand_to_fixpoint,
    flatten_cells,
    gather_ranges,
    group_min_pairs,
    group_unique_pairs,
    relax_to_fixpoint,
    slot_sources,
)


def random_csr(rng, n, m):
    """A random directed CSR (indptr, indices) with ``m`` edges on ``n`` vertices."""
    src = rng.integers(0, n, size=m)
    dst = rng.integers(0, n, size=m)
    order = np.argsort(src, kind="stable")
    src, dst = src[order], dst[order]
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.add.at(indptr, src + 1, 1)
    indptr = np.cumsum(indptr)
    return indptr, dst.astype(np.int64)


class TestCSRGather:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 2**16), n=st.integers(1, 40), m=st.integers(0, 120))
    def test_gather_ranges_matches_loop(self, seed, n, m):
        rng = np.random.default_rng(seed)
        indptr, indices = random_csr(rng, n, m)
        verts = np.unique(rng.integers(0, n, size=rng.integers(0, n + 1)))
        slots, sources = gather_ranges(indptr, verts)
        want_slots, want_sources = [], []
        for v in verts:
            for slot in range(indptr[v], indptr[v + 1]):
                want_slots.append(slot)
                want_sources.append(v)
        assert slots.tolist() == want_slots
        assert sources.tolist() == want_sources

    def test_gather_empty(self):
        slots, sources = gather_ranges(
            np.zeros(5, dtype=np.int64), np.empty(0, dtype=np.int64)
        )
        assert slots.size == 0 and sources.size == 0

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 2**16), n=st.integers(1, 30), m=st.integers(0, 90))
    def test_slot_sources(self, seed, n, m):
        indptr, _ = random_csr(np.random.default_rng(seed), n, m)
        got = slot_sources(indptr)
        want = np.repeat(np.arange(n), np.diff(indptr))
        assert np.array_equal(got, want)


class TestRelaxToFixpoint:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 2**16), n=st.integers(2, 30), m=st.integers(1, 120))
    def test_matches_dijkstra(self, seed, n, m):
        rng = np.random.default_rng(seed)
        indptr, indices = random_csr(rng, n, m)
        weights = rng.uniform(0.1, 5.0, size=len(indices))
        labels = np.full(n, np.inf)
        labels[0] = 0.0
        relax_to_fixpoint(indptr, indices, weights, labels, np.asarray([0]))

        dist = np.full(n, np.inf)
        dist[0] = 0.0
        heap = [(0.0, 0)]
        while heap:
            d, u = heapq.heappop(heap)
            if d > dist[u]:
                continue
            for slot in range(indptr[u], indptr[u + 1]):
                w = indices[slot]
                nd = d + weights[slot]
                if nd < dist[w]:
                    dist[w] = nd
                    heapq.heappush(heap, (nd, int(w)))
        # Same least fixpoint, same final float additions: bit-identical.
        assert labels.tobytes() == dist.tobytes()

    def test_bound_confines_relaxation(self):
        # 0 -1.0-> 1 -1.0-> 2 ; bound 1.5 stops before vertex 2.
        indptr = np.asarray([0, 1, 2, 2])
        indices = np.asarray([1, 2])
        weights = np.asarray([1.0, 1.0])
        labels = np.full(3, np.inf)
        labels[0] = 0.0
        improved = relax_to_fixpoint(
            indptr, indices, weights, labels, np.asarray([0]), bound=1.5
        )
        assert labels.tolist() == [0.0, 1.0, np.inf]
        assert improved.tolist() == [False, True, False]

    def test_blocked_vertices_never_improve(self):
        indptr = np.asarray([0, 1, 2, 2])
        indices = np.asarray([1, 2])
        weights = np.asarray([1.0, 1.0])
        labels = np.asarray([0.0, np.inf, np.inf])
        blocked = np.asarray([False, True, False])
        relax_to_fixpoint(
            indptr, indices, weights, labels, np.asarray([0]), blocked=blocked
        )
        assert np.isinf(labels[1]) and np.isinf(labels[2])


class TestExpandToFixpoint:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 2**16), n=st.integers(2, 30), m=st.integers(0, 120))
    def test_matches_bfs_reachable_set(self, seed, n, m):
        rng = np.random.default_rng(seed)
        indptr, indices = random_csr(rng, n, m)
        edge_ok = rng.random(len(indices)) < 0.7
        visited = np.zeros(n, dtype=bool)
        visited[0] = True
        expanded = np.zeros(n, dtype=bool)
        expand_to_fixpoint(
            indptr, indices, np.asarray([0]), visited, expanded, edge_ok=edge_ok
        )
        want = {0}
        stack = [0]
        while stack:
            u = stack.pop()
            for slot in range(indptr[u], indptr[u + 1]):
                w = int(indices[slot])
                if edge_ok[slot] and w not in want:
                    want.add(w)
                    stack.append(w)
        assert set(np.nonzero(visited)[0].tolist()) == want

    def test_vertex_gate(self):
        # 0 -> 1 -> 2, vertex 1 not ok: expansion stops at the gate.
        indptr = np.asarray([0, 1, 2, 2])
        indices = np.asarray([1, 2])
        visited = np.asarray([True, False, False])
        expanded = np.zeros(3, dtype=bool)
        vertex_ok = np.asarray([True, False, True])
        newly, expanded_now = expand_to_fixpoint(
            indptr, indices, np.asarray([0]), visited, expanded, vertex_ok=vertex_ok
        )
        assert visited.tolist() == [True, False, False]
        assert newly.size == 0
        assert expanded_now.tolist() == [0]


class TestCsrComponents:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 2**16), n=st.integers(1, 40), m=st.integers(0, 120))
    def test_matches_scipy(self, seed, n, m):
        import scipy.sparse as sp
        from scipy.sparse.csgraph import connected_components

        rng = np.random.default_rng(seed)
        indptr, indices = random_csr(rng, n, m)
        mask = rng.random(len(indices)) < 0.6
        ncomp, comp_id = csr_components(indptr, indices, edge_mask=mask)

        rows = slot_sources(indptr)[mask]
        cols = indices[mask]
        graph = sp.coo_matrix(
            (np.ones(len(rows), dtype=np.int8), (rows, cols)), shape=(n, n)
        )
        want_n, want_id = connected_components(graph, directed=False)
        assert ncomp == want_n
        assert np.array_equal(comp_id, want_id)


class TestScatter:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 2**16), m=st.integers(0, 80))
    def test_group_min_pairs(self, seed, m):
        rng = np.random.default_rng(seed)
        groups = rng.integers(0, 4, size=m)
        keys = rng.integers(0, 10, size=m)
        values = rng.uniform(0, 1, size=m)
        best: dict[int, dict[int, float]] = {}
        for g, k, v in zip(groups, keys, values):
            per = best.setdefault(int(g), {})
            if v < per.get(int(k), np.inf):
                per[int(k)] = v
        got = {
            g: dict(zip(verts.tolist(), vals.tolist()))
            for g, verts, vals in group_min_pairs(groups, keys, values)
        }
        assert got == best

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 2**16), m=st.integers(0, 80))
    def test_group_unique_pairs(self, seed, m):
        rng = np.random.default_rng(seed)
        groups = rng.integers(0, 4, size=m)
        keys = rng.integers(0, 10, size=m)
        want: dict[int, set[int]] = {}
        for g, k in zip(groups, keys):
            want.setdefault(int(g), set()).add(int(k))
        got = {g: set(verts.tolist()) for g, verts in group_unique_pairs(groups, keys)}
        assert got == want


class TestAggregate:
    CELLS = [
        (1, 2, 2),
        None,
        (),
        ("a", "b", 2),
        (2,),
        [3, 2, "a"],
    ]

    def test_flatten_cells(self):
        flat, lengths = flatten_cells(self.CELLS)
        assert lengths.tolist() == [3, 0, 0, 3, 1, 3]
        assert list(flat) == [1, 2, 2, "a", "b", 2, 2, 3, 2, "a"]

    def test_count_equal_mixed_types(self):
        flat, _ = flatten_cells(self.CELLS)
        assert count_equal(flat, 2) == 5
        assert count_equal(flat, "a") == 2

    def test_count_equal_in_cells(self):
        assert count_equal_in_cells(self.CELLS, 2) == 5
        assert count_equal_in_cells(self.CELLS, "missing") == 0
        assert count_equal_in_cells([], 2) == 0

    def test_contains_in_cells(self):
        got = contains_in_cells(self.CELLS, 2)
        assert got.tolist() == [True, False, False, True, True, True]

    def test_contains_tuple_query_no_broadcast(self):
        # A tuple query must compare as one value, not broadcast element-wise.
        cells = [((1, 2),), ((3,),), None]
        assert contains_in_cells(cells, (3,)).tolist() == [False, True, False]
        assert contains_in_cells(cells, (1, 2)).tolist() == [True, False, False]

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 2**16))
    def test_random_cells_match_python_count(self, seed):
        rng = np.random.default_rng(seed)
        cells = []
        for _ in range(rng.integers(0, 30)):
            if rng.random() < 0.2:
                cells.append(None)
            else:
                cells.append(tuple(rng.integers(0, 5, size=rng.integers(0, 6)).tolist()))
        tag = int(rng.integers(0, 5))
        want = sum(sum(1 for h in tw if h == tag) for tw in cells if tw)
        assert count_equal_in_cells(cells, tag) == want
        want_mask = [bool(tw) and tag in tw for tw in cells]
        assert contains_in_cells(cells, tag).tolist() == want_mask
