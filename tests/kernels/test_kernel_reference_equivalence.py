"""Kernel-plane ↔ scalar-oracle equivalence, asserted bit-for-bit.

Every algorithm family runs twice — ``use_kernels=True`` (the vectorized
kernel plane) and ``use_kernels=False`` (the original scalar settle, kept as
the measured baseline) — and the two runs must agree byte-identically on
outputs, merge outputs, and final subgraph states.  Where
``algorithms/reference.py`` provides an oracle, both runs are also checked
against it.  A final sweep repeats the check across the serial, thread, and
process executor backends.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.algorithms import (
    CommunityEvolutionComputation,
    HashtagAggregationComputation,
    MemeTrackingComputation,
    PageRankComputation,
    SSSPComputation,
    TDSPComputation,
    TemporalReachabilityComputation,
    colored_timesteps_from_result,
    pagerank_from_result,
    reached_timesteps_from_result,
    sssp_labels_from_result,
    tdsp_labels_from_result,
)
from repro.algorithms import reference as ref
from repro.core import EngineConfig, run_application
from repro.graph import build_collection
from repro.partition import HashPartitioner, partition_graph
from repro.runtime import CollectionInstanceSource
from tests.algorithms.test_reachability_evolution import evolving_case
from tests.conftest import make_grid_template, make_random_template, populate_random
from tests.core.test_executor_equivalence import _canonical


def build_case(seed=0, n=40, m=90, T=2, k=3, directed=False):
    rng = np.random.default_rng(seed)
    tpl = make_random_template(n, m, rng, directed=directed)
    coll = build_collection(tpl, T, populate_random(seed), delta=6.0)
    pg = partition_graph(tpl, k, HashPartitioner(seed=seed))
    return tpl, coll, pg


def snapshot(comp, pg, coll, executor="serial", *, states=True, **run_kwargs):
    res = run_application(
        comp, pg, coll, config=EngineConfig(executor=executor), **run_kwargs
    )
    parts = [_canonical(res.outputs), _canonical(res.merge_outputs)]
    if states:
        parts.append(_canonical(res.states))
    return res, tuple(parts)


def assert_kernel_matches_scalar(make_comp, pg, coll, *, states=True, **run_kwargs):
    """Run kernel and scalar variants; assert byte-identical; return results.

    ``states=False`` limits the comparison to outputs and merge outputs for
    computations whose *internal* state layout legitimately differs between
    the two paths (e.g. scalar-only scratch arrays) while the results must
    still agree byte-for-byte.
    """
    res_k, snap_k = snapshot(make_comp(use_kernels=True), pg, coll, states=states, **run_kwargs)
    res_s, snap_s = snapshot(make_comp(use_kernels=False), pg, coll, states=states, **run_kwargs)
    assert snap_k == snap_s
    return res_k, res_s


class TestSSSP:
    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(0, 2**16), k=st.integers(1, 4), directed=st.booleans())
    def test_bit_identical_and_matches_reference(self, seed, k, directed):
        tpl, coll, pg = build_case(seed, k=k, directed=directed)
        res_k, _ = assert_kernel_matches_scalar(
            lambda **kw: SSSPComputation(0, "latency", **kw),
            pg,
            coll,
            timestep_range=(0, 1),
        )
        got = sssp_labels_from_result(res_k, tpl.num_vertices)
        want = ref.single_source_shortest_paths(
            tpl, 0, coll.instance(0).edge_column("latency")
        )
        # Same least fixpoint reached through the same final float additions.
        assert got.tobytes() == want.tobytes()


class TestTDSP:
    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(0, 2**16), k=st.integers(1, 4))
    def test_bit_identical_and_matches_reference(self, seed, k):
        tpl, coll, pg = build_case(seed, T=4, k=k)
        res_k, _ = assert_kernel_matches_scalar(
            lambda **kw: TDSPComputation(0, **kw), pg, coll
        )
        got = tdsp_labels_from_result(res_k, tpl.num_vertices)
        want = ref.time_expanded_dijkstra(coll, 0)
        assert got.tobytes() == want.tobytes()

    def test_root_pruning_off_still_bit_identical(self):
        _tpl, coll, pg = build_case(7, T=3)
        assert_kernel_matches_scalar(
            lambda **kw: TDSPComputation(0, root_pruning=False, **kw), pg, coll
        )


class TestReachability:
    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(0, 2**16), directed=st.booleans())
    def test_bit_identical_and_matches_reference(self, seed, directed):
        _tpl, coll, pg = evolving_case(seed, directed=directed)
        res_k, _ = assert_kernel_matches_scalar(
            lambda **kw: TemporalReachabilityComputation(0, **kw), pg, coll
        )
        assert reached_timesteps_from_result(res_k) == ref.temporal_reachability(coll, 0)


class TestMeme:
    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(0, 2**16))
    def test_bit_identical_and_matches_reference(self, seed):
        tpl = make_grid_template(5, 6)
        coll = build_collection(tpl, 4, populate_random(seed))
        pg = partition_graph(tpl, 3, HashPartitioner(seed=seed))
        res_k, _ = assert_kernel_matches_scalar(
            lambda **kw: MemeTrackingComputation(1, **kw), pg, coll
        )
        assert colored_timesteps_from_result(res_k) == ref.temporal_meme_bfs(coll, 1)


class TestHashtag:
    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(0, 2**16))
    def test_bit_identical_and_matches_reference(self, seed):
        tpl = make_grid_template(5, 6)
        coll = build_collection(tpl, 4, populate_random(seed))
        pg = partition_graph(tpl, 3, HashPartitioner(seed=seed))
        res_k, _ = assert_kernel_matches_scalar(
            lambda **kw: HashtagAggregationComputation.for_partitioned_graph(pg, 2, **kw),
            pg,
            coll,
        )
        [summary] = [rec[-1] for rec in res_k.merge_outputs]
        assert np.array_equal(summary.counts, ref.hashtag_count_series(coll, 2))


class TestPageRank:
    @pytest.mark.parametrize("directed", [False, True])
    def test_bit_identical(self, directed):
        tpl, coll, pg = build_case(13, directed=directed)
        res_k, _ = assert_kernel_matches_scalar(
            lambda **kw: PageRankComputation(15, **kw), pg, coll, timestep_range=(0, 1)
        )
        got = pagerank_from_result(res_k, tpl.num_vertices)
        want = ref.pagerank(tpl, iterations=15)
        np.testing.assert_allclose(got, want, atol=1e-12)


class TestEvolution:
    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(0, 2**16))
    def test_bit_identical(self, seed):
        tpl, coll, pg = evolving_case(seed, T=5)
        # Scalar-only scratch (slot_src, scipy's int32 comp ids) makes raw
        # state layouts differ; the emitted community labels must not.
        assert_kernel_matches_scalar(
            lambda **kw: CommunityEvolutionComputation(tpl.num_vertices, **kw),
            pg,
            coll,
            states=False,
        )


class TestExecutorSweep:
    """Kernel runs agree with the serial scalar baseline on every backend."""

    @pytest.fixture(scope="class")
    def case(self):
        tpl = make_grid_template(5, 6)
        coll = build_collection(tpl, 4, populate_random(23), delta=6.0)
        pg = partition_graph(tpl, 3, HashPartitioner(seed=3))
        return tpl, coll, pg

    @pytest.mark.parametrize("executor", ["serial", "thread", "process"])
    @pytest.mark.parametrize("name", ["sssp", "tdsp", "meme"])
    def test_kernel_on_executor_matches_scalar_serial(self, case, name, executor):
        _tpl, coll, pg = case
        factories = {
            "sssp": lambda **kw: SSSPComputation(0, "latency", **kw),
            "tdsp": lambda **kw: TDSPComputation(0, **kw),
            "meme": lambda **kw: MemeTrackingComputation(1, **kw),
        }
        kwargs = {"timestep_range": (0, 1)} if name == "sssp" else {}
        if executor == "process":
            kwargs["sources"] = [
                CollectionInstanceSource(coll) for _ in range(pg.num_partitions)
            ]
        _, baseline = snapshot(
            factories[name](use_kernels=False), pg, coll, "serial", **kwargs
        )
        _, got = snapshot(
            factories[name](use_kernels=True), pg, coll, executor, **kwargs
        )
        assert got == baseline
