"""Meme tracking correctness against the reference temporal BFS."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.algorithms.meme import (
    MemeFrontier,
    MemeTrackingComputation,
    colored_timesteps_from_result,
)
from repro.algorithms.reference import temporal_meme_bfs
from repro.core import run_application
from repro.generators import smallworld_network, tweet_collection
from repro.graph import AttributeSchema, AttributeSpec, GraphTemplate, build_collection
from repro.partition import HashPartitioner, partition_graph
from tests.conftest import make_random_template


def tweets_template(n, src, dst, directed=False):
    return GraphTemplate(
        n,
        src,
        dst,
        directed=directed,
        vertex_schema=AttributeSchema([AttributeSpec("tweets", "object")]),
    )


def random_tweet_case(seed, n=35, m=70, T=6, k=3, meme_prob=0.25):
    rng = np.random.default_rng(seed)
    raw = make_random_template(n, m, rng)
    tpl = tweets_template(raw.num_vertices, raw.edge_src, raw.edge_dst)

    def pop(inst, t, _seed=seed):
        r = np.random.default_rng(777 + _seed * 31 + t)
        tw = np.empty(n, dtype=object)
        for v in range(n):
            tw[v] = (0,) if r.random() < meme_prob else ()
        inst.vertex_values.set_column("tweets", tw)

    coll = build_collection(tpl, T, pop, delta=1.0)
    pg = partition_graph(tpl, k, HashPartitioner(seed=seed))
    return tpl, coll, pg


class TestHandCrafted:
    def test_fig4_style_chain_spread(self):
        """Fig 4's scenario: meme hops one vertex per timestep along a path."""
        tpl = tweets_template(4, [0, 1, 2], [1, 2, 3])
        schedule = {  # vertex -> timesteps at which it tweets the meme
            0: {0, 1, 2, 3},
            1: {1, 2, 3},
            2: {2, 3},
            3: {3},
        }

        def pop(inst, t):
            tw = np.empty(4, dtype=object)
            for v in range(4):
                tw[v] = ("m",) if t in schedule[v] else ()
            inst.vertex_values.set_column("tweets", tw)

        coll = build_collection(tpl, 4, pop)
        pg = partition_graph(tpl, 2, HashPartitioner())
        res = run_application(MemeTrackingComputation("m"), pg, coll)
        got = colored_timesteps_from_result(res)
        assert got == {0: 0, 1: 1, 2: 2, 3: 3}

    def test_disconnected_meme_not_colored(self):
        """A vertex with the meme but no path from the seeds stays uncolored."""
        tpl = tweets_template(4, [0, 2], [1, 3])  # components {0,1} and {2,3}

        def pop(inst, t):
            tw = np.empty(4, dtype=object)
            tw[0] = ("m",) if t == 0 else ()
            tw[1] = ("m",) if t >= 1 else ()
            tw[2] = ()
            tw[3] = ("m",) if t >= 1 else ()  # has meme, but no colored neighbor
            inst.vertex_values.set_column("tweets", tw)

        coll = build_collection(tpl, 3, pop)
        pg = partition_graph(tpl, 2, HashPartitioner())
        res = run_application(MemeTrackingComputation("m"), pg, coll)
        got = colored_timesteps_from_result(res)
        assert got == {0: 0, 1: 1}

    def test_spread_resumes_after_gap(self):
        """Meme disappears for a timestep, then reappears adjacent to C*."""
        tpl = tweets_template(3, [0, 1], [1, 2])

        def pop(inst, t):
            tw = np.empty(3, dtype=object)
            tw[0] = ("m",) if t == 0 else ()
            tw[1] = ()  # never tweets in t=1
            tw[2] = ()
            if t == 2:
                tw[1] = ("m",)
            if t == 3:
                tw[2] = ("m",)
            inst.vertex_values.set_column("tweets", tw)

        coll = build_collection(tpl, 4, pop)
        pg = partition_graph(tpl, 2, HashPartitioner())
        got = colored_timesteps_from_result(
            run_application(MemeTrackingComputation("m"), pg, coll)
        )
        assert got == {0: 0, 1: 2, 2: 3}

    def test_multi_hop_within_one_timestep(self):
        """A contiguous meme chain colors fully in a single timestep."""
        tpl = tweets_template(4, [0, 1, 2], [1, 2, 3])

        def pop(inst, t):
            tw = np.empty(4, dtype=object)
            tw[:] = [("m",)] * 4 if t == 0 else [()] * 4
            inst.vertex_values.set_column("tweets", tw)

        coll = build_collection(tpl, 2, pop)
        pg = partition_graph(tpl, 3, HashPartitioner())
        got = colored_timesteps_from_result(
            run_application(MemeTrackingComputation("m"), pg, coll)
        )
        assert got == {0: 0, 1: 0, 2: 0, 3: 0}


class TestReferenceEquivalence:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 2**16), k=st.integers(1, 4))
    def test_matches_reference_random(self, seed, k):
        tpl, coll, pg = random_tweet_case(seed, k=k)
        res = run_application(MemeTrackingComputation(0), pg, coll)
        got = colored_timesteps_from_result(res)
        want = temporal_meme_bfs(coll, 0)
        assert got == want

    def test_sir_workload_on_smallworld(self):
        tpl = smallworld_network(300, seed=4)
        coll = tweet_collection(tpl, 12, hit_probability=0.2, seed=4, memes=[0, 1])
        pg = partition_graph(tpl, 3, HashPartitioner(seed=1))
        for meme in (0, 1):
            res = run_application(MemeTrackingComputation(meme), pg, coll)
            got = colored_timesteps_from_result(res)
            want = temporal_meme_bfs(coll, meme)
            assert got == want

    def test_frontier_counts_sum_to_colored(self):
        tpl, coll, pg = random_tweet_case(99)
        res = run_application(MemeTrackingComputation(0), pg, coll)
        total = sum(
            rec.count for _t, _sg, rec in res.outputs if isinstance(rec, MemeFrontier)
        )
        assert total == len(colored_timesteps_from_result(res))
