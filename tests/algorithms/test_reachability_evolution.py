"""Tests for temporal reachability and community evolution over is_exists topology."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.algorithms import (
    CommunityEvolutionComputation,
    TemporalReachabilityComputation,
    community_events,
    largest_subgraph_in_partition,
    reached_timesteps_from_result,
)
from repro.algorithms import reference as ref
from repro.core import run_application
from repro.generators import PeriodicExistencePopulator, make_collection
from repro.graph import AttributeSchema, AttributeSpec, GraphTemplate, build_collection
from repro.partition import HashPartitioner, partition_graph
from tests.conftest import make_random_template


def evolving_template(n, src, dst, directed=False):
    return GraphTemplate(
        n,
        src,
        dst,
        directed=directed,
        edge_schema=AttributeSchema([AttributeSpec("is_exists", "bool", default=True)]),
    )


def evolving_case(seed, n=30, m=60, T=8, k=3, directed=False):
    raw = make_random_template(n, m, np.random.default_rng(seed), directed=directed)
    tpl = evolving_template(raw.num_vertices, raw.edge_src, raw.edge_dst, directed)
    pop = PeriodicExistencePopulator(tpl, seed=seed, always_on_fraction=0.3, duty=0.5)
    coll = make_collection(tpl, T, pop)
    pg = partition_graph(tpl, k, HashPartitioner(seed=seed))
    return tpl, coll, pg


class TestTemporalReachability:
    def test_hand_crafted_bridge(self):
        """A bridge edge that only exists at t=2 delays the far side to t=2."""
        tpl = evolving_template(4, [0, 1, 2], [1, 2, 3])

        def pop(inst, t):
            exists = np.array([True, t == 2, True])  # 1-2 bridge closed except t=2
            inst.edge_values.set_column("is_exists", exists)

        coll = build_collection(tpl, 4, pop)
        pg = partition_graph(tpl, 2, HashPartitioner())
        res = run_application(TemporalReachabilityComputation(0), pg, coll)
        got = reached_timesteps_from_result(res)
        assert got == {0: 0, 1: 0, 2: 2, 3: 2}

    def test_source_always_reached_at_zero(self):
        tpl, coll, pg = evolving_case(3)
        res = run_application(TemporalReachabilityComputation(5), pg, coll)
        got = reached_timesteps_from_result(res)
        assert got[5] == 0

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 2**16), k=st.integers(1, 4), directed=st.booleans())
    def test_matches_reference(self, seed, k, directed):
        tpl, coll, pg = evolving_case(seed, k=k, directed=directed)
        res = run_application(TemporalReachabilityComputation(0), pg, coll)
        got = reached_timesteps_from_result(res)
        want = ref.temporal_reachability(coll, 0)
        assert got == want

    def test_missing_exists_column_means_static(self):
        """Without is_exists, reachability degenerates to one-timestep BFS."""
        raw = make_random_template(20, 40, np.random.default_rng(1))
        tpl = GraphTemplate(20, raw.edge_src, raw.edge_dst)  # no edge schema
        coll = build_collection(tpl, 5)
        pg = partition_graph(tpl, 2, HashPartitioner())
        res = run_application(TemporalReachabilityComputation(0), pg, coll)
        got = reached_timesteps_from_result(res)
        levels = ref.bfs_levels(tpl, 0)
        for v, t in got.items():
            assert t == 0 and np.isfinite(levels[v])
        assert len(got) == int(np.isfinite(levels).sum())

    def test_early_halt_when_everything_reached(self):
        tpl = evolving_template(4, [0, 1, 2], [1, 2, 3])

        def pop(inst, t):
            inst.edge_values.set_column("is_exists", np.ones(3, dtype=bool))

        coll = build_collection(tpl, 20, pop)
        pg = partition_graph(tpl, 2, HashPartitioner())
        res = run_application(TemporalReachabilityComputation(0), pg, coll)
        assert res.halted_early
        assert res.timesteps_executed < 20


class TestCommunityEvents:
    def test_birth(self):
        prev = np.array([0, 1, 2, 3])  # all singletons
        curr = np.array([0, 0, 2, 3])  # {0,1} appears
        e = community_events(prev, curr)
        assert e == {"births": 1, "deaths": 0, "splits": 0, "merges": 0}

    def test_death(self):
        prev = np.array([0, 0, 2, 3])
        curr = np.array([0, 1, 2, 3])
        e = community_events(prev, curr)
        assert e == {"births": 0, "deaths": 1, "splits": 0, "merges": 0}

    def test_merge(self):
        prev = np.array([0, 0, 2, 2])
        curr = np.array([0, 0, 0, 0])
        e = community_events(prev, curr)
        assert e["merges"] == 1 and e["splits"] == 0

    def test_split(self):
        prev = np.array([0, 0, 0, 0])
        curr = np.array([0, 0, 2, 2])
        e = community_events(prev, curr)
        assert e["splits"] == 1 and e["merges"] == 0

    def test_stable(self):
        labels = np.array([0, 0, 2, 2])
        e = community_events(labels, labels)
        assert e == {"births": 0, "deaths": 0, "splits": 0, "merges": 0}

    def test_simultaneous(self):
        prev = np.array([0, 0, 2, 2, 4, 4, 4, 7])
        curr = np.array([0, 0, 0, 0, 4, 4, 6, 6])  # {0,2} merge; {4..} splits
        e = community_events(prev, curr)
        assert e["merges"] == 1
        assert e["splits"] == 1


class TestCommunityEvolution:
    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 2**16), directed=st.booleans())
    def test_labels_match_reference(self, seed, directed):
        tpl, coll, pg = evolving_case(seed, T=6, directed=directed)
        comp = CommunityEvolutionComputation(
            tpl.num_vertices, largest_subgraph_in_partition(pg, 0)
        )
        res = run_application(comp, pg, coll)
        (_sg, summary), = res.merge_outputs
        for t in range(6):
            want = ref.instance_communities(coll, t)
            assert np.array_equal(summary.labels[t], want), f"timestep {t}"

    def test_summary_fields_consistent(self):
        tpl, coll, pg = evolving_case(11, T=6)
        comp = CommunityEvolutionComputation(
            tpl.num_vertices, largest_subgraph_in_partition(pg, 0)
        )
        res = run_application(comp, pg, coll)
        (_sg, s), = res.merge_outputs
        T = s.labels.shape[0]
        assert s.labels.shape == (T, tpl.num_vertices)
        assert len(s.num_communities) == T
        assert len(s.births) == T - 1 == len(s.splits) == len(s.merges) == len(s.deaths)
        # Event counts recomputable from the label matrix.
        for t in range(1, T):
            e = community_events(s.labels[t - 1], s.labels[t])
            assert e["births"] == s.births[t - 1]
            assert e["splits"] == s.splits[t - 1]

    def test_static_topology_no_events(self):
        raw = make_random_template(20, 30, np.random.default_rng(2))
        tpl = evolving_template(20, raw.edge_src, raw.edge_dst)

        def pop(inst, t):
            inst.edge_values.set_column("is_exists", np.ones(tpl.num_edges, dtype=bool))

        coll = build_collection(tpl, 4, pop)
        pg = partition_graph(tpl, 2, HashPartitioner())
        comp = CommunityEvolutionComputation(20, largest_subgraph_in_partition(pg, 0))
        res = run_application(comp, pg, coll)
        (_sg, s), = res.merge_outputs
        assert np.all(s.births == 0) and np.all(s.deaths == 0)
        assert np.all(s.splits == 0) and np.all(s.merges == 0)
        assert len(set(map(tuple, s.labels))) == 1  # identical every timestep


class TestPeriodicExistencePopulator:
    def test_schedule_deterministic_and_periodic(self):
        raw = make_random_template(10, 20, np.random.default_rng(0))
        tpl = evolving_template(10, raw.edge_src, raw.edge_dst)
        pop = PeriodicExistencePopulator(tpl, seed=1, min_period=3, max_period=5)
        a = pop.exists_at(4)
        b = pop.exists_at(4)
        assert np.array_equal(a, b)
        # Period p edges repeat with period p.
        for e in range(tpl.num_edges):
            p = pop.period[e]
            assert pop.exists_at(2)[e] == pop.exists_at(2 + p)[e]

    def test_always_on_fraction(self):
        raw = make_random_template(10, 30, np.random.default_rng(1))
        tpl = evolving_template(10, raw.edge_src, raw.edge_dst)
        pop = PeriodicExistencePopulator(tpl, seed=2, always_on_fraction=1.0)
        for t in range(10):
            assert pop.exists_at(t).all()

    def test_invalid_params(self):
        raw = make_random_template(5, 6, np.random.default_rng(2))
        tpl = evolving_template(5, raw.edge_src, raw.edge_dst)
        with pytest.raises(ValueError):
            PeriodicExistencePopulator(tpl, min_period=0)
        with pytest.raises(ValueError):
            PeriodicExistencePopulator(tpl, duty=0.0)

    def test_populates_column(self):
        raw = make_random_template(8, 12, np.random.default_rng(3))
        tpl = evolving_template(8, raw.edge_src, raw.edge_dst)
        pop = PeriodicExistencePopulator(tpl, seed=3)
        coll = make_collection(tpl, 3, pop)
        inst = coll.instance(1)
        assert np.array_equal(inst.edge_exists_mask(), pop.exists_at(1))
