"""Tests for the independent-pattern instance statistics computation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.algorithms import InstanceStatisticsComputation, stats_series_from_result
from repro.algorithms.statistics import _combine, _partial
from repro.core import run_application
from repro.graph import build_collection
from repro.partition import HashPartitioner, partition_graph
from tests.conftest import make_grid_template, make_random_template, populate_random


@pytest.fixture
def case():
    tpl = make_grid_template(5, 6)
    coll = build_collection(tpl, 4, populate_random(7))
    pg = partition_graph(tpl, 3, HashPartitioner(seed=1))
    return tpl, coll, pg


class TestVertexStats:
    def test_matches_numpy(self, case):
        tpl, coll, pg = case
        comp = InstanceStatisticsComputation("traffic", range_low=0, range_high=100)
        res = run_application(comp, pg, coll)
        series = stats_series_from_result(res)
        assert set(series) == {0, 1, 2, 3}
        for t, s in series.items():
            vals = coll.instance(t).vertex_column("traffic")
            assert s.count == tpl.num_vertices
            assert s.total == pytest.approx(vals.sum())
            assert s.mean == pytest.approx(vals.mean())
            assert s.variance == pytest.approx(vals.var())
            assert s.std == pytest.approx(vals.std())
            assert s.minimum == pytest.approx(vals.min())
            assert s.maximum == pytest.approx(vals.max())
            want_hist, _ = np.histogram(vals, bins=s.bin_edges)
            assert np.array_equal(s.histogram, want_hist)

    def test_histogram_counts_everything_in_range(self, case):
        tpl, coll, pg = case
        comp = InstanceStatisticsComputation("traffic", range_low=0, range_high=100)
        res = run_application(comp, pg, coll)
        for s in stats_series_from_result(res).values():
            assert s.histogram.sum() == s.count  # values fill (0, 100)


class TestEdgeStats:
    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 2**16), k=st.integers(1, 4), directed=st.booleans())
    def test_each_edge_counted_exactly_once(self, seed, k, directed):
        rng = np.random.default_rng(seed)
        tpl = make_random_template(25, 50, rng, directed=directed)
        coll = build_collection(tpl, 1, populate_random(seed))
        pg = partition_graph(tpl, k, HashPartitioner(seed=seed))
        comp = InstanceStatisticsComputation(
            "latency", on="edges", range_low=0, range_high=10
        )
        res = run_application(comp, pg, coll)
        (s,) = stats_series_from_result(res).values()
        vals = coll.instance(0).edge_column("latency")
        assert s.count == tpl.num_edges
        assert s.total == pytest.approx(vals.sum())
        assert s.variance == pytest.approx(vals.var())


class TestValidation:
    def test_bad_on(self):
        with pytest.raises(ValueError):
            InstanceStatisticsComputation("x", on="faces")

    def test_bad_bins(self):
        with pytest.raises(ValueError):
            InstanceStatisticsComputation("x", bin_edges=[1.0])
        with pytest.raises(ValueError):
            InstanceStatisticsComputation("x", bin_edges=[2.0, 1.0])


class TestPartialCombine:
    @given(
        a=st.lists(st.floats(0, 100), max_size=30),
        b=st.lists(st.floats(0, 100), max_size=30),
    )
    def test_combine_equals_whole(self, a, b):
        edges = np.linspace(0, 100, 6)
        pa = _partial(np.asarray(a), edges)
        pb = _partial(np.asarray(b), edges)
        combined = _combine(pa, pb)
        whole = _partial(np.asarray(a + b), edges)
        assert combined[0] == whole[0]
        assert combined[1] == pytest.approx(whole[1])
        if combined[0]:
            assert combined[2] == pytest.approx(whole[2])
            assert combined[3] == pytest.approx(whole[3])
            assert combined[4] == pytest.approx(whole[4], abs=1e-6)
        assert np.array_equal(combined[5], whole[5])

    def test_empty_partial(self):
        edges = np.linspace(0, 1, 3)
        p = _partial(np.empty(0), edges)
        assert p[0] == 0 and np.isinf(p[2])
        q = _partial(np.asarray([0.5]), edges)
        assert _combine(p, q)[0] == 1
        assert _combine(q, p)[0] == 1
