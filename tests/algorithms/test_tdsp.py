"""TDSP correctness: the paper's worked example + reference equivalence."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import run_application
from repro.algorithms.tdsp import TDSPComputation, TDSPFrontier, tdsp_labels_from_result
from repro.algorithms.reference import (
    single_source_shortest_paths,
    time_expanded_dijkstra,
)
from repro.graph import (
    AttributeSchema,
    AttributeSpec,
    GraphTemplate,
    build_collection,
)
from repro.partition import HashPartitioner, MetisLikePartitioner, partition_graph
from tests.conftest import make_random_template


def latency_template(n, src, dst, directed=False):
    return GraphTemplate(
        n,
        src,
        dst,
        directed=directed,
        edge_schema=AttributeSchema([AttributeSpec("latency", "float")]),
    )


class TestPaperWorkedExample:
    """Section III-C / Fig 5a: estimated 7, actual 35, optimal (TDSP) 14.

    Vertices S=0, A=1, E=2, C=3; δ=5 minutes.
    g0: S→A=5, S→E=2, E→C=5, A→C=30
    g1: latencies jump (E→C=30, A→C=30)
    g2: A→C drops to 4.
    Naive SSSP on g0 estimates S→E→C = 7; following that route actually
    takes 35 (wait at E until t=5, then 30); the time-aware optimum is
    S→A (5), wait δ, then A→C in g2 (4) = 14.
    """

    def setup_method(self):
        # Edges: 0:(S,A) 1:(S,E) 2:(E,C) 3:(A,C)
        self.tpl = latency_template(4, [0, 0, 2, 1], [1, 2, 3, 3])
        lat = {
            0: [5.0, 2.0, 5.0, 30.0],
            1: [5.0, 2.0, 30.0, 30.0],
            2: [5.0, 2.0, 30.0, 4.0],
        }

        def pop(inst, t):
            inst.edge_values.set_column("latency", np.asarray(lat[t]))

        self.coll = build_collection(self.tpl, 3, pop, delta=5.0)

    def test_naive_sssp_estimates_7(self):
        labels = single_source_shortest_paths(
            self.tpl, 0, self.coll.instance(0).edge_column("latency")
        )
        assert labels[3] == pytest.approx(7.0)  # S→E→C on g0

    def test_reference_tdsp_is_14(self):
        dist = time_expanded_dijkstra(self.coll, 0)
        assert dist[3] == pytest.approx(14.0)
        assert dist[1] == pytest.approx(5.0)  # S→A within g0
        assert dist[2] == pytest.approx(2.0)  # S→E within g0

    @pytest.mark.parametrize("k", [1, 2, 4])
    def test_distributed_tdsp_is_14(self, k):
        pg = partition_graph(self.tpl, k, HashPartitioner())
        res = run_application(TDSPComputation(0), pg, self.coll)
        labels = tdsp_labels_from_result(res, 4)
        assert labels[3] == pytest.approx(14.0)
        assert labels[0] == 0.0

    def test_frontier_outputs_record_finalization_timestep(self):
        pg = partition_graph(self.tpl, 2, HashPartitioner())
        res = run_application(TDSPComputation(0), pg, self.coll)
        finalized_at = {}
        for _t, _sg, rec in res.outputs:
            assert isinstance(rec, TDSPFrontier)
            for v, l in zip(rec.vertices, rec.labels):
                finalized_at[int(v)] = (rec.timestep, float(l))
        assert finalized_at[0] == (0, 0.0)
        assert finalized_at[1] == (0, 5.0)
        assert finalized_at[2] == (0, 2.0)
        assert finalized_at[3] == (2, 14.0)


def _random_case(seed, n=30, m=55, T=5, k=3):
    rng = np.random.default_rng(seed)
    tpl_raw = make_random_template(n, m, rng)
    tpl = latency_template(tpl_raw.num_vertices, tpl_raw.edge_src, tpl_raw.edge_dst)

    def pop(inst, t, _seed=seed):
        r = np.random.default_rng(10_000 + _seed * 100 + t)
        inst.edge_values.set_column(
            "latency", r.uniform(0.5, 12.0, inst.template.num_edges)
        )

    coll = build_collection(tpl, T, pop, delta=5.0)
    pg = partition_graph(tpl, k, HashPartitioner(seed=seed))
    return tpl, coll, pg


class TestReferenceEquivalence:
    @settings(max_examples=12, deadline=None)
    @given(seed=st.integers(0, 2**16), k=st.integers(1, 4))
    def test_matches_time_expanded_dijkstra(self, seed, k):
        tpl, coll, pg = _random_case(seed, k=k)
        res = run_application(TDSPComputation(0), pg, coll)
        got = tdsp_labels_from_result(res, tpl.num_vertices)
        want = time_expanded_dijkstra(coll, 0)
        np.testing.assert_allclose(
            np.nan_to_num(got, posinf=1e18), np.nan_to_num(want, posinf=1e18)
        )

    def test_metis_partitioning_equivalent(self):
        tpl, coll, _ = _random_case(5)
        pg = partition_graph(tpl, 3, MetisLikePartitioner(seed=2))
        res = run_application(TDSPComputation(0), pg, coll)
        got = tdsp_labels_from_result(res, tpl.num_vertices)
        want = time_expanded_dijkstra(coll, 0)
        np.testing.assert_allclose(
            np.nan_to_num(got, posinf=1e18), np.nan_to_num(want, posinf=1e18)
        )

    def test_different_sources(self):
        tpl, coll, pg = _random_case(7)
        for source in (0, 5, 17):
            res = run_application(TDSPComputation(source), pg, coll)
            got = tdsp_labels_from_result(res, tpl.num_vertices)
            want = time_expanded_dijkstra(coll, source)
            np.testing.assert_allclose(
                np.nan_to_num(got, posinf=1e18), np.nan_to_num(want, posinf=1e18)
            )

    def test_directed_graph(self):
        rng = np.random.default_rng(3)
        raw = make_random_template(25, 60, rng, directed=True)
        tpl = latency_template(25, raw.edge_src, raw.edge_dst, directed=True)

        def pop(inst, t):
            r = np.random.default_rng(42 + t)
            inst.edge_values.set_column("latency", r.uniform(0.5, 12.0, tpl.num_edges))

        coll = build_collection(tpl, 5, pop, delta=5.0)
        pg = partition_graph(tpl, 3, HashPartitioner(seed=1))
        res = run_application(TDSPComputation(0), pg, coll)
        got = tdsp_labels_from_result(res, 25)
        want = time_expanded_dijkstra(coll, 0)
        np.testing.assert_allclose(
            np.nan_to_num(got, posinf=1e18), np.nan_to_num(want, posinf=1e18)
        )


class TestBehaviour:
    def test_early_halt_when_all_finalized(self):
        """Small-world-like fast convergence: run ends before the last instance."""
        # Complete-ish graph with tiny latencies: everything reached at t=0.
        n = 8
        src, dst = [], []
        for i in range(n):
            for j in range(i + 1, n):
                src.append(i)
                dst.append(j)
        tpl = latency_template(n, src, dst)

        def pop(inst, t):
            inst.edge_values.set_column("latency", np.full(tpl.num_edges, 0.5))

        coll = build_collection(tpl, 20, pop, delta=5.0)
        pg = partition_graph(tpl, 2, HashPartitioner(seed=1))
        res = run_application(TDSPComputation(0), pg, coll)
        assert res.halted_early
        assert res.timesteps_executed < 20

    def test_unreachable_vertices_inf(self):
        tpl = latency_template(4, [0], [1])  # vertices 2, 3 isolated

        def pop(inst, t):
            inst.edge_values.set_column("latency", np.array([1.0]))

        coll = build_collection(tpl, 3, pop, delta=5.0)
        pg = partition_graph(tpl, 2, HashPartitioner(seed=1))
        res = run_application(TDSPComputation(0), pg, coll)
        labels = tdsp_labels_from_result(res, 4)
        assert labels[1] == 1.0
        assert np.isinf(labels[2]) and np.isinf(labels[3])

    def test_stall_halt_exact_when_latencies_within_window(self):
        """With all latencies ≤ δ, stall-based halting changes nothing but
        the number of timesteps executed."""
        rng = np.random.default_rng(21)
        raw = make_random_template(30, 55, rng)
        tpl = latency_template(30, raw.edge_src, raw.edge_dst)

        def pop(inst, t):
            r = np.random.default_rng(500 + t)
            inst.edge_values.set_column("latency", r.uniform(0.2, 4.5, tpl.num_edges))

        coll = build_collection(tpl, 12, pop, delta=5.0)
        pg = partition_graph(tpl, 3, HashPartitioner(seed=1))
        full = run_application(TDSPComputation(0), pg, coll)
        stall = run_application(TDSPComputation(0, halt_when_stalled=True), pg, coll)
        a = tdsp_labels_from_result(full, 30)
        b = tdsp_labels_from_result(stall, 30)
        np.testing.assert_allclose(
            np.nan_to_num(a, posinf=1e18), np.nan_to_num(b, posinf=1e18)
        )
        assert stall.timesteps_executed <= full.timesteps_executed

    def test_stall_halt_terminates_on_unreachable_graph(self):
        """Disconnected vertices never finalize; stall-halt still ends the run."""
        tpl = latency_template(4, [0], [1])

        def pop(inst, t):
            inst.edge_values.set_column("latency", np.array([1.0]))

        coll = build_collection(tpl, 30, pop, delta=5.0)
        pg = partition_graph(tpl, 2, HashPartitioner(seed=1))
        res = run_application(TDSPComputation(0, halt_when_stalled=True), pg, coll)
        assert res.timesteps_executed <= 3
        labels = tdsp_labels_from_result(res, 4)
        assert labels[1] == 1.0 and np.isinf(labels[2])

    def test_labels_within_horizon(self):
        tpl, coll, pg = _random_case(11)
        res = run_application(TDSPComputation(0), pg, coll)
        labels = tdsp_labels_from_result(res, tpl.num_vertices)
        finite = labels[np.isfinite(labels)]
        assert np.all(finite <= len(coll) * coll.delta)
        assert np.all(finite >= 0)
