"""Hashtag aggregation correctness (eventually dependent pattern)."""

import numpy as np
import pytest

from repro.algorithms.hashtag import (
    HashtagAggregationComputation,
    HashtagSummary,
    largest_subgraph_in_partition,
)
from repro.algorithms.reference import hashtag_count_series
from repro.core import run_application
from repro.generators import (
    BackgroundHashtagPopulator,
    CompositePopulator,
    SIRTweetPopulator,
    make_collection,
    smallworld_network,
)
from repro.partition import HashPartitioner, partition_graph
from tests.conftest import make_grid_template, populate_random


@pytest.fixture
def case():
    tpl = make_grid_template(5, 6)
    from repro.graph import build_collection

    coll = build_collection(tpl, 7, populate_random(21))
    pg = partition_graph(tpl, 3, HashPartitioner(seed=2))
    return tpl, coll, pg


class TestAggregation:
    def test_counts_match_reference(self, case):
        tpl, coll, pg = case
        for tag in (0, 1, 3):
            comp = HashtagAggregationComputation.for_partitioned_graph(pg, tag)
            res = run_application(comp, pg, coll)
            (_sg, summary), = res.merge_outputs
            assert isinstance(summary, HashtagSummary)
            want = hashtag_count_series(coll, tag)
            assert np.array_equal(summary.counts, want)
            assert summary.total == want.sum()

    def test_rate_of_change(self, case):
        tpl, coll, pg = case
        comp = HashtagAggregationComputation.for_partitioned_graph(pg, 0)
        res = run_application(comp, pg, coll)
        (_sg, summary), = res.merge_outputs
        assert np.array_equal(summary.rate_of_change, np.diff(summary.counts))
        assert summary.peak_timestep == int(np.argmax(summary.counts))

    def test_master_is_largest_subgraph_in_partition_0(self, case):
        tpl, coll, pg = case
        master = largest_subgraph_in_partition(pg, 0)
        sizes = {sg.subgraph_id: sg.num_vertices for sg in pg.partitions[0].subgraphs}
        assert sizes[master] == max(sizes.values())
        comp = HashtagAggregationComputation.for_partitioned_graph(pg, 0)
        res = run_application(comp, pg, coll)
        assert res.merge_outputs[0][0] == master

    def test_multiplicity_counted(self):
        """A hashtag appearing twice in one vertex's tweets counts twice."""
        tpl = make_grid_template(2, 2)
        from repro.graph import build_collection

        def pop(inst, t):
            tw = np.empty(4, dtype=object)
            tw[:] = [("x", "x"), ("x",), (), ()]
            inst.vertex_values.set_column("tweets", tw)

        coll = build_collection(tpl, 2, pop)
        pg = partition_graph(tpl, 2, HashPartitioner())
        comp = HashtagAggregationComputation.for_partitioned_graph(pg, "x")
        res = run_application(comp, pg, coll)
        (_sg, summary), = res.merge_outputs
        assert np.array_equal(summary.counts, [3, 3])

    def test_absent_hashtag_all_zero(self, case):
        tpl, coll, pg = case
        comp = HashtagAggregationComputation.for_partitioned_graph(pg, "nope")
        res = run_application(comp, pg, coll)
        (_sg, summary), = res.merge_outputs
        assert summary.total == 0
        assert np.all(summary.counts == 0)

    def test_with_sir_and_background_noise(self):
        """Tracked meme counts stay correct with ambient hashtag chatter."""
        tpl = smallworld_network(200, seed=5)
        sir = SIRTweetPopulator(
            tpl, [0], hit_probability=0.2, num_timesteps=8, seed=5
        )
        noise = BackgroundHashtagPopulator([100, 101], rate=0.5, seed=6)
        coll = make_collection(tpl, 8, CompositePopulator([sir, noise]))
        pg = partition_graph(tpl, 3, HashPartitioner(seed=1))
        comp = HashtagAggregationComputation.for_partitioned_graph(pg, 0)
        res = run_application(comp, pg, coll)
        (_sg, summary), = res.merge_outputs
        want = hashtag_count_series(coll, 0)
        assert np.array_equal(summary.counts, want)

    def test_empty_partition0_raises(self):
        from repro.graph import GraphTemplate
        from repro.partition import decompose

        tpl = GraphTemplate(2, [0], [1])
        pg = decompose(tpl, np.array([1, 1]), 2)  # partition 0 empty
        with pytest.raises(ValueError, match="no subgraphs"):
            largest_subgraph_in_partition(pg, 0)
