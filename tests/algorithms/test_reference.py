"""Sanity tests for the reference implementations themselves (vs networkx)."""

import networkx as nx
import numpy as np
import pytest

from repro.algorithms import reference as ref
from repro.graph import build_collection
from tests.conftest import make_grid_template, make_random_template, populate_random


def to_nx(tpl, weights=None):
    g = nx.DiGraph() if tpl.directed else nx.Graph()
    g.add_nodes_from(range(tpl.num_vertices))
    for e in range(tpl.num_edges):
        w = 1.0 if weights is None else float(weights[e])
        g.add_edge(int(tpl.edge_src[e]), int(tpl.edge_dst[e]), weight=w)
    return g


class TestSSSPvsNetworkx:
    @pytest.mark.parametrize("directed", [False, True])
    def test_weighted(self, rng, directed):
        tpl = make_random_template(30, 70, rng, directed=directed)
        weights = rng.uniform(0.5, 5.0, tpl.num_edges)
        got = ref.single_source_shortest_paths(tpl, 0, weights)
        lengths = nx.single_source_dijkstra_path_length(to_nx(tpl, weights), 0)
        for v in range(30):
            if v in lengths:
                assert got[v] == pytest.approx(lengths[v])
            else:
                assert np.isinf(got[v])

    def test_bfs(self, rng):
        tpl = make_random_template(30, 60, rng)
        got = ref.bfs_levels(tpl, 0)
        lengths = nx.single_source_shortest_path_length(to_nx(tpl), 0)
        for v in range(30):
            if v in lengths:
                assert got[v] == lengths[v]
            else:
                assert np.isinf(got[v])


class TestWCCvsNetworkx:
    @pytest.mark.parametrize("directed", [False, True])
    def test_components(self, rng, directed):
        tpl = make_random_template(40, 50, rng, directed=directed)
        got = ref.weakly_connected_components(tpl)
        g = to_nx(tpl)
        comps = (
            nx.weakly_connected_components(g) if directed else nx.connected_components(g)
        )
        for comp in comps:
            labels = {got[v] for v in comp}
            assert len(labels) == 1
            assert labels.pop() == min(comp)


class TestPagerankProperties:
    def test_uniform_on_cycle(self):
        from repro.graph import GraphTemplate

        n = 10
        tpl = GraphTemplate(n, np.arange(n), (np.arange(n) + 1) % n, directed=True)
        pr = ref.pagerank(tpl, iterations=50)
        np.testing.assert_allclose(pr, 1.0 / n, atol=1e-9)

    def test_sums_to_at_most_one(self, rng):
        tpl = make_random_template(30, 60, rng, directed=True)
        pr = ref.pagerank(tpl)
        assert 0 < pr.sum() <= 1.0 + 1e-9  # dangling mass leaks, never grows


class TestTimeExpandedDijkstra:
    def test_static_latencies_reduce_to_sssp_when_within_window(self):
        """With δ huge and constant latencies, TDSP == plain SSSP."""
        tpl = make_grid_template(3, 4)
        weights = np.random.default_rng(1).uniform(0.5, 2.0, tpl.num_edges)

        def pop(inst, t):
            inst.edge_values.set_column("latency", weights)

        coll = build_collection(tpl, 1, pop, delta=1000.0)
        got = ref.time_expanded_dijkstra(coll, 0)
        want = ref.single_source_shortest_paths(tpl, 0, weights)
        np.testing.assert_allclose(got, want)

    def test_waiting_is_beneficial(self):
        """Waiting for a cheap future edge beats an expensive current one."""
        from repro.graph import AttributeSchema, AttributeSpec, GraphTemplate

        tpl = GraphTemplate(
            2,
            [0],
            [1],
            edge_schema=AttributeSchema([AttributeSpec("latency", "float")]),
        )
        lat = {0: [100.0], 1: [2.0]}

        def pop(inst, t):
            inst.edge_values.set_column("latency", np.asarray(lat[t]))

        coll = build_collection(tpl, 2, pop, delta=5.0)
        got = ref.time_expanded_dijkstra(coll, 0)
        assert got[1] == pytest.approx(7.0)  # wait to t=5, then 2

    def test_monotone_in_horizon(self):
        """More instances can only reach more vertices / equal labels."""
        tpl = make_grid_template(3, 5)

        def pop(inst, t):
            r = np.random.default_rng(50 + t)
            inst.edge_values.set_column(
                "latency", r.uniform(1.0, 8.0, tpl.num_edges)
            )

        coll_short = build_collection(tpl, 2, pop, delta=4.0)
        coll_long = build_collection(tpl, 6, pop, delta=4.0)
        d_short = ref.time_expanded_dijkstra(coll_short, 0)
        d_long = ref.time_expanded_dijkstra(coll_long, 0)
        assert np.all(d_long <= d_short + 1e-12)


class TestMemeAndHashtagRefs:
    def test_meme_monotone_colored_set(self):
        tpl = make_grid_template(4, 4)
        coll = build_collection(tpl, 5, populate_random(3))
        colored = ref.temporal_meme_bfs(coll, 1)
        # First-colored timesteps are within range and seeds exist at 0 only
        # if any vertex carried the meme at instance 0.
        assert all(0 <= t < 5 for t in colored.values())

    def test_hashtag_counts_manual(self):
        tpl = make_grid_template(2, 2)

        def pop(inst, t):
            tw = np.empty(4, dtype=object)
            tw[:] = [(1, 1, 2), (2,), (), (1,)] if t == 0 else [(), (), (), ()]
            inst.vertex_values.set_column("tweets", tw)

        coll = build_collection(tpl, 2, pop)
        assert np.array_equal(ref.hashtag_count_series(coll, 1), [3, 0])
        assert np.array_equal(ref.hashtag_count_series(coll, 2), [2, 0])
