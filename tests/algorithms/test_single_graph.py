"""Subgraph-centric single-graph algorithms: SSSP/BFS/WCC/PageRank/Top-N."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.algorithms import (
    BFSComputation,
    PageRankComputation,
    SSSPComputation,
    TopNComputation,
    WCCComputation,
    pagerank_from_result,
    sssp_labels_from_result,
    wcc_labels_from_result,
)
from repro.algorithms import reference as ref
from repro.core import run_application
from repro.graph import build_collection
from repro.partition import HashPartitioner, partition_graph
from tests.conftest import make_grid_template, make_random_template, populate_random


def build_case(seed=0, n=40, m=90, k=3, directed=False):
    rng = np.random.default_rng(seed)
    tpl = make_random_template(n, m, rng, directed=directed)
    coll = build_collection(tpl, 2, populate_random(seed))
    pg = partition_graph(tpl, k, HashPartitioner(seed=seed))
    return tpl, coll, pg


class TestSSSP:
    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 2**16), k=st.integers(1, 4))
    def test_weighted_matches_dijkstra(self, seed, k):
        tpl, coll, pg = build_case(seed, k=k)
        res = run_application(SSSPComputation(0, "latency"), pg, coll, timestep_range=(0, 1))
        got = sssp_labels_from_result(res, tpl.num_vertices)
        want = ref.single_source_shortest_paths(
            tpl, 0, coll.instance(0).edge_column("latency")
        )
        np.testing.assert_allclose(
            np.nan_to_num(got, posinf=1e18), np.nan_to_num(want, posinf=1e18)
        )

    def test_directed(self):
        tpl, coll, pg = build_case(3, directed=True)
        res = run_application(SSSPComputation(0, "latency"), pg, coll, timestep_range=(0, 1))
        got = sssp_labels_from_result(res, tpl.num_vertices)
        want = ref.single_source_shortest_paths(
            tpl, 0, coll.instance(0).edge_column("latency")
        )
        np.testing.assert_allclose(
            np.nan_to_num(got, posinf=1e18), np.nan_to_num(want, posinf=1e18)
        )

    def test_bfs_unweighted(self):
        tpl, coll, pg = build_case(9)
        res = run_application(BFSComputation(4), pg, coll, timestep_range=(0, 1))
        got = sssp_labels_from_result(res, tpl.num_vertices)
        want = ref.bfs_levels(tpl, 4)
        np.testing.assert_allclose(
            np.nan_to_num(got, posinf=1e18), np.nan_to_num(want, posinf=1e18)
        )

    def test_subgraph_centric_fewer_supersteps_than_diameter(self):
        """The headline claim: supersteps scale with the subgraph meta-graph,
        not the vertex graph (a 1×N path partitioned into k chunks needs
        ~k supersteps, not ~N)."""
        tpl = make_grid_template(1, 60)  # path graph, diameter 59
        coll = build_collection(tpl, 1, populate_random(1))
        from repro.partition import BFSPartitioner

        pg = partition_graph(tpl, 3, BFSPartitioner(seed=0))
        res = run_application(BFSComputation(0), pg, coll, timestep_range=(0, 1))
        got = sssp_labels_from_result(res, 60)
        np.testing.assert_allclose(got, ref.bfs_levels(tpl, 0))
        assert res.metrics.total_supersteps() < 12  # far below diameter


class TestWCC:
    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 2**16), k=st.integers(1, 4), directed=st.booleans())
    def test_matches_reference(self, seed, k, directed):
        tpl, coll, pg = build_case(seed, m=45, k=k, directed=directed)
        res = run_application(WCCComputation(), pg, coll, timestep_range=(0, 1))
        got = wcc_labels_from_result(res, tpl.num_vertices)
        want = ref.weakly_connected_components(tpl)
        assert np.array_equal(got, want)

    def test_single_component_grid(self):
        tpl = make_grid_template(5, 5)
        coll = build_collection(tpl, 1, populate_random(0))
        pg = partition_graph(tpl, 4, HashPartitioner(seed=2))
        res = run_application(WCCComputation(), pg, coll, timestep_range=(0, 1))
        got = wcc_labels_from_result(res, 25)
        assert np.all(got == 0)


class TestPageRank:
    @pytest.mark.parametrize("directed", [False, True])
    def test_matches_reference(self, directed):
        tpl, coll, pg = build_case(13, directed=directed)
        res = run_application(PageRankComputation(15), pg, coll, timestep_range=(0, 1))
        got = pagerank_from_result(res, tpl.num_vertices)
        want = ref.pagerank(tpl, iterations=15)
        np.testing.assert_allclose(got, want, atol=1e-12)

    def test_iteration_count_controls_supersteps(self):
        tpl, coll, pg = build_case(13)
        res = run_application(PageRankComputation(5), pg, coll, timestep_range=(0, 1))
        # supersteps = iterations + 1 (push at 0) + 1 (end_of_timestep record)
        assert res.metrics.supersteps_per_timestep[0] == 7

    def test_invalid_iterations(self):
        with pytest.raises(ValueError):
            PageRankComputation(0)


class TestTopN:
    def test_matches_manual(self):
        tpl, coll, pg = build_case(17)
        res = run_application(TopNComputation(4, "traffic"), pg, coll)
        recs = {rec.timestep: rec for rec in res.all_output_records()}
        for t in range(2):
            vals = coll.instance(t).vertex_column("traffic")
            want = np.sort(vals)[::-1][:4]
            np.testing.assert_allclose(np.sort(recs[t].values)[::-1], want)
            # Reported vertices actually carry those values.
            np.testing.assert_allclose(vals[recs[t].vertices], recs[t].values)

    def test_results_sorted_descending(self):
        tpl, coll, pg = build_case(18)
        res = run_application(TopNComputation(5, "traffic"), pg, coll)
        for rec in res.all_output_records():
            assert np.all(np.diff(rec.values) <= 0)

    def test_n_larger_than_graph(self):
        tpl, coll, pg = build_case(19, n=6, m=8)
        res = run_application(TopNComputation(50, "traffic"), pg, coll)
        for rec in res.all_output_records():
            assert len(rec.vertices) == 6

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            TopNComputation(0, "traffic")
