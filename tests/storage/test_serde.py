"""Round-trip tests for template/schema serialization."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graph import AttributeSchema, AttributeSpec, GraphTemplate
from repro.storage import load_template, save_template, schema_from_bytes, schema_to_bytes
from tests.conftest import make_grid_template, make_random_template


class TestSchemaRoundtrip:
    def test_basic(self):
        schema = AttributeSchema(
            [
                AttributeSpec("a", "float", default=1.5),
                AttributeSpec("b", "int"),
                AttributeSpec("c", "object"),
                AttributeSpec("d", "bool", default=True),
            ]
        )
        assert schema_from_bytes(schema_to_bytes(schema)) == schema

    def test_empty(self):
        assert schema_from_bytes(schema_to_bytes(AttributeSchema())) == AttributeSchema()

    @given(
        names=st.lists(
            st.text(alphabet="abcdefgh", min_size=1, max_size=6), unique=True, min_size=1, max_size=5
        ),
        dtypes=st.lists(st.sampled_from(["float", "int", "bool", "object"]), min_size=5, max_size=5),
    )
    def test_roundtrip_random(self, names, dtypes):
        specs = [AttributeSpec(n, d) for n, d in zip(names, dtypes) if n != "id"]
        schema = AttributeSchema(specs)
        assert schema_from_bytes(schema_to_bytes(schema)) == schema


class TestTemplateRoundtrip:
    def test_grid(self, tmp_path):
        tpl = make_grid_template(4, 5, name="grid-Ünicode")
        path = tmp_path / "tpl.npz"
        save_template(path, tpl)
        assert load_template(path).equals(tpl)
        assert load_template(path).name == "grid-Ünicode"

    def test_directed_with_ids(self, tmp_path, rng):
        tpl = make_random_template(20, 40, rng, directed=True)
        tpl.vertex_ids[:] = np.arange(20) * 7 + 3
        path = tmp_path / "t.npz"
        save_template(path, tpl)
        out = load_template(path)
        assert out.equals(tpl)
        assert out.directed

    def test_empty_graph(self, tmp_path):
        tpl = GraphTemplate(0, [], [], name="empty")
        save_template(tmp_path / "e.npz", tpl)
        assert load_template(tmp_path / "e.npz").num_vertices == 0

    def test_creates_parent_dirs(self, tmp_path):
        tpl = make_grid_template(2, 2)
        path = tmp_path / "deep" / "nested" / "t.npz"
        save_template(path, tpl)
        assert load_template(path).equals(tpl)

    def test_version_check(self, tmp_path):
        tpl = make_grid_template(2, 2)
        path = tmp_path / "t.npz"
        save_template(path, tpl)
        # Corrupt the version field.
        with np.load(path) as data:
            arrays = {k: data[k] for k in data.files}
        arrays["format_version"] = np.int64(99)
        np.savez_compressed(path, **arrays)
        with pytest.raises(ValueError, match="version"):
            load_template(path)
