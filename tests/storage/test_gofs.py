"""Tests for the GoFS store: slices, packing/binning, partition views."""

import pickle

import numpy as np
import pytest

from repro.graph import build_collection
from repro.partition import HashPartitioner, partition_graph
from repro.storage import (
    GoFS,
    GoFSPartitionView,
    SliceKey,
    bin_rows,
    slice_filename,
    slice_nbytes,
)
from tests.conftest import make_grid_template, populate_random


@pytest.fixture
def store(tmp_path):
    tpl = make_grid_template(5, 6)
    coll = build_collection(tpl, 12, populate_random(5), delta=2.0, t0=1.0)
    pg = partition_graph(tpl, 3, HashPartitioner(seed=1))
    manifest = GoFS.write_collection(tmp_path, pg, coll, packing=4, binning=2)
    return tmp_path, tpl, coll, pg, manifest


class TestWrite:
    def test_manifest(self, store):
        root, tpl, coll, pg, manifest = store
        assert manifest["num_timesteps"] == 12
        assert manifest["packing"] == 4 and manifest["binning"] == 2
        assert manifest["num_partitions"] == 3
        assert manifest["t0"] == 1.0 and manifest["delta"] == 2.0
        assert GoFS.read_manifest(root) == manifest

    def test_bins_cover_all_subgraphs(self, store):
        _, _, _, pg, manifest = store
        for p, bins in enumerate(manifest["bins"]):
            got = sorted(s for b in bins for s in b)
            want = sorted(sg.subgraph_id for sg in pg.partitions[p].subgraphs)
            assert got == want
            assert all(len(b) <= 2 for b in bins)

    def test_slice_files_exist(self, store):
        root, _, _, _, manifest = store
        for p, bins in enumerate(manifest["bins"]):
            for b in range(len(bins)):
                for k in range(3):  # 12 timesteps / packing 4
                    assert (root / slice_filename(SliceKey(p, b, k))).exists()

    def test_template_roundtrip(self, store):
        root, tpl, *_ = store
        assert GoFS.load_template(root).equals(tpl)

    def test_bad_packing(self, store, tmp_path):
        root, tpl, coll, pg, _ = store
        with pytest.raises(ValueError):
            GoFS.write_collection(tmp_path / "x", pg, coll, packing=0)


class TestPartitionView:
    def test_values_match_original_on_owned_rows(self, store):
        root, tpl, coll, pg, _ = store
        for p in range(3):
            view = GoFS.partition_view(root, p)
            own_vertices = pg.partitions[p].vertices
            own_edges = np.unique(
                np.concatenate(
                    [sg.edge_index for sg in pg.partitions[p].subgraphs]
                    + [sg.remote.edge_index for sg in pg.partitions[p].subgraphs]
                )
            )
            for t in (0, 3, 4, 11):
                got = view.instance(t)
                want = coll.instance(t)
                assert got.timestamp == want.timestamp
                assert np.array_equal(
                    got.vertex_column("traffic")[own_vertices],
                    want.vertex_column("traffic")[own_vertices],
                )
                assert np.array_equal(
                    got.edge_column("latency")[own_edges],
                    want.edge_column("latency")[own_edges],
                )
                # Object column (tweets) round-trips too.
                got_tw = got.vertex_column("tweets")[own_vertices]
                want_tw = want.vertex_column("tweets")[own_vertices]
                assert all(a == b for a, b in zip(got_tw, want_tw))

    def test_load_events_at_pack_boundaries(self, store):
        root, *_ = store
        view = GoFS.partition_view(root, 0)
        for t in range(12):
            view.instance(t)
        boundaries = [t for t, _s in view.load_events]
        assert boundaries == [0, 4, 8]

    def test_no_reload_within_pack(self, store):
        root, *_ = store
        view = GoFS.partition_view(root, 0)
        view.instance(1)
        view.instance(2)
        view.instance(1)
        assert len(view.load_events) == 1

    def test_resident_bytes(self, store):
        root, *_ = store
        view = GoFS.partition_view(root, 0)
        assert view.resident_bytes() == 0
        view.instance(0)
        assert view.resident_bytes() > 0

    def test_out_of_range(self, store):
        root, *_ = store
        view = GoFS.partition_view(root, 0)
        with pytest.raises(IndexError):
            view.instance(12)

    def test_invalid_partition(self, store):
        root, *_ = store
        with pytest.raises(ValueError, match="partition"):
            GoFS.partition_view(root, 7)

    def test_pickle_roundtrip(self, store):
        root, tpl, coll, pg, _ = store
        view = GoFS.partition_view(root, 1)
        view.instance(0)  # populate the cache (must not be pickled)
        clone = pickle.loads(pickle.dumps(view))
        assert clone.partition_id == 1
        assert clone.resident_bytes() == 0  # cache not carried over
        own = pg.partitions[1].vertices
        assert np.array_equal(
            clone.instance(5).vertex_column("traffic")[own],
            coll.instance(5).vertex_column("traffic")[own],
        )

    def test_partition_views_helper(self, store):
        root, *_ = store
        views = GoFS.partition_views(root)
        assert [v.partition_id for v in views] == [0, 1, 2]


class TestBinRows:
    def test_rows_cover_bin(self, store):
        _, _, _, pg, _ = store
        subgraphs = pg.partitions[0].subgraphs[:2]
        verts, edges = bin_rows(subgraphs)
        want_verts = np.unique(np.concatenate([sg.vertices for sg in subgraphs]))
        assert np.array_equal(verts, want_verts)
        for sg in subgraphs:
            assert np.isin(sg.edge_index, edges).all()
            assert np.isin(sg.remote.edge_index, edges).all()

    def test_empty_bin(self):
        verts, edges = bin_rows([])
        assert len(verts) == 0 and len(edges) == 0


class TestPackCache:
    def test_lru_eviction(self, store):
        root, *_ = store
        view = GoFS.partition_view(root, 0, cache_packs=2)
        view.instance(0)   # pack 0
        view.instance(4)   # pack 1
        view.instance(8)   # pack 2 -> evicts pack 0
        assert len(view._cache) == 2
        assert set(view._cache) == {1, 2}
        view.instance(0)   # pack 0 reloads -> evicts pack 1 (least recent)
        assert set(view._cache) == {0, 2}
        assert len(view.load_events) == 4

    def test_refresh_on_hit(self, store):
        root, *_ = store
        view = GoFS.partition_view(root, 0, cache_packs=2)
        view.instance(0)   # pack 0
        view.instance(4)   # pack 1
        view.instance(1)   # pack 0 hit -> refresh
        view.instance(8)   # pack 2 -> evicts pack 1 (pack 0 was refreshed)
        assert set(view._cache) == {0, 2}

    def test_cache_avoids_reloads_on_revisit(self, store):
        root, *_ = store
        small = GoFS.partition_view(root, 0, cache_packs=1)
        big = GoFS.partition_view(root, 0, cache_packs=3)
        for t in (0, 4, 0, 4, 8, 0):
            small.instance(t)
            big.instance(t)
        assert len(small.load_events) == 6  # thrashes
        assert len(big.load_events) == 3    # each pack loaded once

    def test_resident_bytes_scales_with_cache(self, store):
        root, *_ = store
        small = GoFS.partition_view(root, 0, cache_packs=1)
        big = GoFS.partition_view(root, 0, cache_packs=3)
        for t in (0, 4, 8):
            small.instance(t)
            big.instance(t)
        assert big.resident_bytes() > small.resident_bytes()

    def test_invalid_cache_packs(self, store):
        root, *_ = store
        with pytest.raises(ValueError):
            GoFS.partition_view(root, 0, cache_packs=0)

    def test_pickle_preserves_setting(self, store):
        root, *_ = store
        view = GoFS.partition_view(root, 1, cache_packs=4)
        clone = pickle.loads(pickle.dumps(view))
        assert clone.cache_packs == 4


def _one_pack_nbytes(root):
    """Resident bytes of exactly one pack (all packs are the same shape)."""
    probe = GoFS.partition_view(root, 0)
    probe.instance(0)
    return probe.resident_bytes()


class TestByteBudget:
    def test_byte_budget_lifts_count_cap(self, store):
        root, *_ = store
        view = GoFS.partition_view(root, 0, cache_bytes=1 << 40)
        assert view.cache_packs is None
        for t in (0, 4, 8):
            view.instance(t)
        assert set(view._cache) == {0, 1, 2}
        assert len(view.load_events) == 3

    def test_evicts_oldest_when_over_budget(self, store):
        root, *_ = store
        one = _one_pack_nbytes(root)
        view = GoFS.partition_view(root, 0, cache_bytes=2 * one)
        view.instance(0)
        view.instance(4)
        assert set(view._cache) == {0, 1}
        view.instance(8)  # third pack busts the budget -> pack 0 evicted
        assert set(view._cache) == {1, 2}
        assert view.resident_bytes() <= 2 * one

    def test_resident_bytes_shrinks_after_eviction(self, store):
        root, *_ = store
        one = _one_pack_nbytes(root)
        view = GoFS.partition_view(root, 0, cache_bytes=2 * one)
        for t in (0, 4, 8):
            view.instance(t)
        want = sum(
            slice_nbytes(d) for data in view._cache.values() for d in data
        )
        assert view.resident_bytes() == want == 2 * one  # not 3 * one

    def test_newest_pack_kept_even_over_budget(self, store):
        root, *_ = store
        view = GoFS.partition_view(root, 0, cache_bytes=1)
        view.instance(0)
        assert set(view._cache) == {0}
        assert view.resident_bytes() > 1  # over budget, but never empty
        view.instance(4)
        assert set(view._cache) == {1}

    def test_count_and_byte_caps_compose(self, store):
        root, *_ = store
        one = _one_pack_nbytes(root)
        view = GoFS.partition_view(root, 0, cache_packs=2, cache_bytes=10 * one)
        for t in (0, 4, 8):
            view.instance(t)
        assert set(view._cache) == {1, 2}  # the count cap binds first

    def test_invalid_cache_bytes(self, store):
        root, *_ = store
        with pytest.raises(ValueError):
            GoFS.partition_view(root, 0, cache_bytes=0)

    def test_pickle_preserves_budget_and_prefetch(self, store):
        root, *_ = store
        view = GoFS.partition_view(
            root, 1, cache_bytes=123456, prefetch=True, prefetch_lead=3
        )
        clone = pickle.loads(pickle.dumps(view))
        assert clone.cache_bytes == 123456
        assert clone.cache_packs is None
        assert clone.prefetch_enabled is True
        assert clone.prefetch_lead == 3


class TestSharedManifest:
    def test_views_share_one_manifest_read(self, store, monkeypatch):
        root, *_ = store
        calls = {"manifest": 0, "template": 0}
        real_manifest, real_template = GoFS.read_manifest, GoFS.load_template

        def counting_manifest(r):
            calls["manifest"] += 1
            return real_manifest(r)

        def counting_template(r):
            calls["template"] += 1
            return real_template(r)

        monkeypatch.setattr(GoFS, "read_manifest", staticmethod(counting_manifest))
        monkeypatch.setattr(GoFS, "load_template", staticmethod(counting_template))
        views = GoFS.partition_views(root)
        assert calls == {"manifest": 1, "template": 1}
        assert views[0].manifest is views[1].manifest is views[2].manifest
        assert views[0].template is views[1].template is views[2].template

    def test_shared_views_still_read_correctly(self, store):
        root, tpl, coll, pg, _ = store
        views = GoFS.partition_views(root)
        own = pg.partitions[2].vertices
        assert np.array_equal(
            views[2].instance(5).vertex_column("traffic")[own],
            coll.instance(5).vertex_column("traffic")[own],
        )

    def test_pickled_clone_rereads_independently(self, store):
        root, *_ = store
        views = GoFS.partition_views(root)
        clone = pickle.loads(pickle.dumps(views[0]))
        assert clone.manifest == views[0].manifest
        assert clone.manifest is not views[0].manifest
        assert clone.template is not views[0].template


class TestPrefetch:
    def test_disabled_returns_false(self, store):
        root, *_ = store
        view = GoFS.partition_view(root, 0)
        assert view.prefetch(4) is False
        assert view.prefetch_started == 0

    def test_out_of_range_returns_false(self, store):
        root, *_ = store
        view = GoFS.partition_view(root, 0, prefetch=True)
        assert view.prefetch(12) is False
        assert view.prefetch(-1) is False

    def test_already_cached_returns_false(self, store):
        root, *_ = store
        view = GoFS.partition_view(root, 0, prefetch=True)
        view.instance(0)
        assert view.prefetch(1) is False

    def test_hit_records_hidden_seconds_at_boundary(self, store):
        root, *_ = store
        view = GoFS.partition_view(root, 0, prefetch=True, cache_packs=2)
        assert view.prefetch(4) is True
        view._inflight[1].result(timeout=30)  # settle: make the hit deterministic
        view.instance(4)
        assert view.prefetch_started == 1
        assert view.prefetch_hits == 1
        assert view.prefetch_misses == 0
        assert [t for t, _s in view.load_events] == [4]  # pack boundary
        assert view.drain_hidden_load() > 0.0
        assert view.drain_hidden_load() == 0.0  # drained

    def test_prefetched_instance_bit_identical(self, store):
        root, tpl, *_ = store
        sync = GoFS.partition_view(root, 0)
        pre = GoFS.partition_view(root, 0, prefetch=True)
        pre.prefetch(4)
        a, b = sync.instance(4), pre.instance(4)
        assert a.timestamp == b.timestamp
        assert np.array_equal(a.vertex_column("traffic"), b.vertex_column("traffic"))
        assert np.array_equal(a.edge_column("latency"), b.edge_column("latency"))

    def test_auto_trigger_near_pack_boundary(self, store):
        root, *_ = store
        view = GoFS.partition_view(root, 0, prefetch=True, cache_packs=2)
        view.instance(0)  # row 0 of pack 0: too early to arm
        assert 1 not in view._inflight and 1 not in view._cache
        view.instance(2)  # row >= packing - lead: arms the pack-1 prefetch
        assert 1 in view._inflight or 1 in view._cache
        view.instance(4)
        assert view.prefetch_hits == 1
        assert view.prefetch_misses == 1  # only pack 0's cold load

    def test_sync_fallthrough_counts_miss(self, store):
        root, *_ = store
        view = GoFS.partition_view(root, 0, prefetch=True)
        view.instance(0)
        assert view.prefetch_misses == 1
        assert view.prefetch_hits == 0

    def test_invalidate_discards_inflight_accounting(self, store):
        root, *_ = store
        view = GoFS.partition_view(root, 0, prefetch=True)
        view.prefetch(4)
        view.invalidate_prefetch()
        assert view._inflight == {}
        assert view.drain_hidden_load() == 0.0
        view.instance(4)  # demand load records fresh evidence only
        assert [t for t, _s in view.load_events] == [4]

    def test_invalidate_surfaces_failed_background_read(self, store):
        """ISSUE 9: a failed in-flight read is discarded but not silenced —
        the teardown emits a ``teardown_error`` event instead of ``pass``."""
        import concurrent.futures

        root, *_ = store
        view = GoFS.partition_view(root, 0, prefetch=True)

        def boom(pack):
            raise OSError("slice mid-rewrite")

        view._read_pack = boom
        view.prefetch(4)
        concurrent.futures.wait(list(view._inflight.values()))

        events = []

        class _Tracer:
            def event(self, kind, **fields):
                events.append((kind, fields))

            def count(self, name, n=1):
                pass

        view.tracer = _Tracer()
        view.invalidate_prefetch()
        assert view._inflight == {}
        assert [k for k, _f in events] == ["teardown_error"]
        fields = events[0][1]
        assert fields["where"] == "prefetch_invalidate"
        assert "OSError" in fields["error"]

    def test_reload_instance_records_nothing(self, store):
        root, _tpl, coll, *_ = store
        view = GoFS.partition_view(root, 0, prefetch=True)
        inst = view.reload_instance(4)
        assert inst.timestamp == coll.instance(4).timestamp
        assert view.load_events == []
        assert view.prefetch_misses == 0
        assert view.drain_hidden_load() == 0.0

    def test_purge_load_events(self, store):
        root, *_ = store
        view = GoFS.partition_view(root, 0, cache_packs=3)
        for t in range(12):
            view.instance(t)
        assert [t for t, _s in view.load_events] == [0, 4, 8]
        assert view.purge_load_events(8, inclusive=False) == 0  # keeps t=8
        assert view.purge_load_events(8) == 1  # drops t=8 itself
        assert [t for t, _s in view.load_events] == [0, 4]

    def test_close_is_idempotent(self, store):
        root, *_ = store
        view = GoFS.partition_view(root, 0, prefetch=True)
        view.prefetch(4)
        view.close()
        view.close()
        assert view._inflight == {}

    def test_absorb_never_evicts_in_use_pack(self, store):
        """Regression: with the default single-pack cap, absorbing the
        prefetched pack k+1 used to evict pack k while compute was still
        reading it — the next intra-pack access re-read pack k (evicting
        k+1 in turn), doubling I/O instead of hiding it."""
        root, *_ = store
        view = GoFS.partition_view(root, 0, prefetch=True)  # cache_packs=1
        view.instance(0)  # pack 0 resident and in use
        view.prefetch(4)  # pack 1 in flight
        view._inflight[1].result(timeout=30)
        view.instance(1)  # absorb lands pack 1; pack 0 must survive
        assert set(view._cache) == {0, 1}
        view.instance(4)  # boundary crossing is a hit, not a re-read
        assert view.prefetch_hits == 1
        assert [t for t, _s in view.load_events] == [0, 4]

    def test_default_cache_prefetch_scan_matches_sync_loads(self, store):
        """A bare prefetch=True scan (the CLI's --prefetch with no cache
        knob) must do exactly the sync run's I/O — one load per pack."""
        root, *_ = store
        sync = GoFS.partition_view(root, 0)
        view = GoFS.partition_view(root, 0, prefetch=True)
        for t in range(12):
            sync.instance(t)
            view.instance(t)
            for fut in list(view._inflight.values()):
                fut.result(timeout=30)  # settle: absorb deterministically
        assert [t for t, _s in sync.load_events] == [0, 4, 8]
        assert [t for t, _s in view.load_events] == [0, 4, 8]
        assert view.prefetch_misses == 1  # only pack 0's cold start
        assert view.prefetch_hits == 2

    def test_small_byte_budget_prefetch_does_not_thrash(self, store):
        """Same hazard via cache_bytes: a budget below two packs must not
        let an absorbed prefetch evict the in-use pack."""
        root, *_ = store
        one = _one_pack_nbytes(root)
        view = GoFS.partition_view(root, 0, prefetch=True, cache_bytes=one)
        for t in range(12):
            view.instance(t)
            for fut in list(view._inflight.values()):
                fut.result(timeout=30)
        assert [t for t, _s in view.load_events] == [0, 4, 8]
        assert view.prefetch_misses == 1
