"""Tests for the GoFS store: slices, packing/binning, partition views."""

import pickle

import numpy as np
import pytest

from repro.graph import build_collection
from repro.partition import HashPartitioner, partition_graph
from repro.storage import GoFS, GoFSPartitionView, SliceKey, bin_rows, slice_filename
from tests.conftest import make_grid_template, populate_random


@pytest.fixture
def store(tmp_path):
    tpl = make_grid_template(5, 6)
    coll = build_collection(tpl, 12, populate_random(5), delta=2.0, t0=1.0)
    pg = partition_graph(tpl, 3, HashPartitioner(seed=1))
    manifest = GoFS.write_collection(tmp_path, pg, coll, packing=4, binning=2)
    return tmp_path, tpl, coll, pg, manifest


class TestWrite:
    def test_manifest(self, store):
        root, tpl, coll, pg, manifest = store
        assert manifest["num_timesteps"] == 12
        assert manifest["packing"] == 4 and manifest["binning"] == 2
        assert manifest["num_partitions"] == 3
        assert manifest["t0"] == 1.0 and manifest["delta"] == 2.0
        assert GoFS.read_manifest(root) == manifest

    def test_bins_cover_all_subgraphs(self, store):
        _, _, _, pg, manifest = store
        for p, bins in enumerate(manifest["bins"]):
            got = sorted(s for b in bins for s in b)
            want = sorted(sg.subgraph_id for sg in pg.partitions[p].subgraphs)
            assert got == want
            assert all(len(b) <= 2 for b in bins)

    def test_slice_files_exist(self, store):
        root, _, _, _, manifest = store
        for p, bins in enumerate(manifest["bins"]):
            for b in range(len(bins)):
                for k in range(3):  # 12 timesteps / packing 4
                    assert (root / slice_filename(SliceKey(p, b, k))).exists()

    def test_template_roundtrip(self, store):
        root, tpl, *_ = store
        assert GoFS.load_template(root).equals(tpl)

    def test_bad_packing(self, store, tmp_path):
        root, tpl, coll, pg, _ = store
        with pytest.raises(ValueError):
            GoFS.write_collection(tmp_path / "x", pg, coll, packing=0)


class TestPartitionView:
    def test_values_match_original_on_owned_rows(self, store):
        root, tpl, coll, pg, _ = store
        for p in range(3):
            view = GoFS.partition_view(root, p)
            own_vertices = pg.partitions[p].vertices
            own_edges = np.unique(
                np.concatenate(
                    [sg.edge_index for sg in pg.partitions[p].subgraphs]
                    + [sg.remote.edge_index for sg in pg.partitions[p].subgraphs]
                )
            )
            for t in (0, 3, 4, 11):
                got = view.instance(t)
                want = coll.instance(t)
                assert got.timestamp == want.timestamp
                assert np.array_equal(
                    got.vertex_column("traffic")[own_vertices],
                    want.vertex_column("traffic")[own_vertices],
                )
                assert np.array_equal(
                    got.edge_column("latency")[own_edges],
                    want.edge_column("latency")[own_edges],
                )
                # Object column (tweets) round-trips too.
                got_tw = got.vertex_column("tweets")[own_vertices]
                want_tw = want.vertex_column("tweets")[own_vertices]
                assert all(a == b for a, b in zip(got_tw, want_tw))

    def test_load_events_at_pack_boundaries(self, store):
        root, *_ = store
        view = GoFS.partition_view(root, 0)
        for t in range(12):
            view.instance(t)
        boundaries = [t for t, _s in view.load_events]
        assert boundaries == [0, 4, 8]

    def test_no_reload_within_pack(self, store):
        root, *_ = store
        view = GoFS.partition_view(root, 0)
        view.instance(1)
        view.instance(2)
        view.instance(1)
        assert len(view.load_events) == 1

    def test_resident_bytes(self, store):
        root, *_ = store
        view = GoFS.partition_view(root, 0)
        assert view.resident_bytes() == 0
        view.instance(0)
        assert view.resident_bytes() > 0

    def test_out_of_range(self, store):
        root, *_ = store
        view = GoFS.partition_view(root, 0)
        with pytest.raises(IndexError):
            view.instance(12)

    def test_invalid_partition(self, store):
        root, *_ = store
        with pytest.raises(ValueError, match="partition"):
            GoFS.partition_view(root, 7)

    def test_pickle_roundtrip(self, store):
        root, tpl, coll, pg, _ = store
        view = GoFS.partition_view(root, 1)
        view.instance(0)  # populate the cache (must not be pickled)
        clone = pickle.loads(pickle.dumps(view))
        assert clone.partition_id == 1
        assert clone.resident_bytes() == 0  # cache not carried over
        own = pg.partitions[1].vertices
        assert np.array_equal(
            clone.instance(5).vertex_column("traffic")[own],
            coll.instance(5).vertex_column("traffic")[own],
        )

    def test_partition_views_helper(self, store):
        root, *_ = store
        views = GoFS.partition_views(root)
        assert [v.partition_id for v in views] == [0, 1, 2]


class TestBinRows:
    def test_rows_cover_bin(self, store):
        _, _, _, pg, _ = store
        subgraphs = pg.partitions[0].subgraphs[:2]
        verts, edges = bin_rows(subgraphs)
        want_verts = np.unique(np.concatenate([sg.vertices for sg in subgraphs]))
        assert np.array_equal(verts, want_verts)
        for sg in subgraphs:
            assert np.isin(sg.edge_index, edges).all()
            assert np.isin(sg.remote.edge_index, edges).all()

    def test_empty_bin(self):
        verts, edges = bin_rows([])
        assert len(verts) == 0 and len(edges) == 0


class TestPackCache:
    def test_lru_eviction(self, store):
        root, *_ = store
        view = GoFS.partition_view(root, 0, cache_packs=2)
        view.instance(0)   # pack 0
        view.instance(4)   # pack 1
        view.instance(8)   # pack 2 -> evicts pack 0
        assert len(view._cache) == 2
        assert set(view._cache) == {1, 2}
        view.instance(0)   # pack 0 reloads -> evicts pack 1 (least recent)
        assert set(view._cache) == {0, 2}
        assert len(view.load_events) == 4

    def test_refresh_on_hit(self, store):
        root, *_ = store
        view = GoFS.partition_view(root, 0, cache_packs=2)
        view.instance(0)   # pack 0
        view.instance(4)   # pack 1
        view.instance(1)   # pack 0 hit -> refresh
        view.instance(8)   # pack 2 -> evicts pack 1 (pack 0 was refreshed)
        assert set(view._cache) == {0, 2}

    def test_cache_avoids_reloads_on_revisit(self, store):
        root, *_ = store
        small = GoFS.partition_view(root, 0, cache_packs=1)
        big = GoFS.partition_view(root, 0, cache_packs=3)
        for t in (0, 4, 0, 4, 8, 0):
            small.instance(t)
            big.instance(t)
        assert len(small.load_events) == 6  # thrashes
        assert len(big.load_events) == 3    # each pack loaded once

    def test_resident_bytes_scales_with_cache(self, store):
        root, *_ = store
        small = GoFS.partition_view(root, 0, cache_packs=1)
        big = GoFS.partition_view(root, 0, cache_packs=3)
        for t in (0, 4, 8):
            small.instance(t)
            big.instance(t)
        assert big.resident_bytes() > small.resident_bytes()

    def test_invalid_cache_packs(self, store):
        root, *_ = store
        with pytest.raises(ValueError):
            GoFS.partition_view(root, 0, cache_packs=0)

    def test_pickle_preserves_setting(self, store):
        root, *_ = store
        view = GoFS.partition_view(root, 1, cache_packs=4)
        clone = pickle.loads(pickle.dumps(view))
        assert clone.cache_packs == 4
