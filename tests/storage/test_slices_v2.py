"""Zero-copy GSL2 slice format: round-trips, back-compat, pickle gating."""

import numpy as np
import pytest

from repro.graph import build_collection
from repro.partition import HashPartitioner, partition_graph
from repro.storage import (
    GoFS,
    SliceKey,
    read_slice,
    slice_filename,
    write_slice,
)
from repro.storage.serde import GSL2_MAGIC, pack_arrays, unpack_arrays
from repro.storage.slices import DEFAULT_SLICE_FORMAT
from tests.conftest import make_grid_template, populate_random


def sample_arrays(with_objects=False):
    arrays = {
        "a": np.arange(12, dtype=np.int64).reshape(3, 4),
        "b": np.linspace(0, 1, 7),
        "c": np.asarray([True, False, True]),
        "empty": np.empty((0, 5), dtype=np.float32),
    }
    if with_objects:
        cells = np.empty(3, dtype=object)
        cells[:] = [(1, 2), None, ("x",)]
        arrays["tweets"] = cells
    return arrays


class TestPackArrays:
    @pytest.mark.parametrize("compress", [False, True])
    @pytest.mark.parametrize("with_objects", [False, True])
    def test_roundtrip(self, compress, with_objects):
        arrays = sample_arrays(with_objects)
        buf = pack_arrays(arrays, compress=compress)
        assert buf[:4] == GSL2_MAGIC
        out = unpack_arrays(buf)
        assert set(out) == set(arrays)
        for name, arr in arrays.items():
            got = out[name]
            assert got.dtype == arr.dtype and got.shape == arr.shape
            if arr.dtype == object:
                assert got.tolist() == arr.tolist()
            else:
                assert got.tobytes() == arr.tobytes()

    def test_numeric_arrays_are_zero_copy_views(self):
        buf = pack_arrays(sample_arrays())
        out = unpack_arrays(buf)
        a = out["a"]
        assert not a.flags.writeable  # frombuffer view over the file bytes
        assert a.base is not None

    def test_payload_offsets_are_aligned(self):
        import json

        buf = pack_arrays(sample_arrays())
        hlen = int.from_bytes(buf[4:8], "little")
        header = json.loads(buf[8 : 8 + hlen])
        for entry in header["arrays"]:
            assert entry["offset"] % 64 == 0

    def test_allow_objects_false_rejects_pickled_columns(self):
        buf = pack_arrays(sample_arrays(with_objects=True))
        with pytest.raises(ValueError, match="tweets"):
            unpack_arrays(buf, allow_objects=False)
        # Numeric-only buffers pass the strict gate untouched.
        strict = unpack_arrays(pack_arrays(sample_arrays()), allow_objects=False)
        assert "a" in strict

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError, match="magic"):
            unpack_arrays(b"NOPE" + b"\x00" * 16)


@pytest.fixture
def slice_case():
    tpl = make_grid_template(4, 5)
    coll = build_collection(tpl, 3, populate_random(7))
    pg = partition_graph(tpl, 2, HashPartitioner(seed=1))
    sg = pg.partitions[0].subgraphs[0]
    verts = sg.vertices
    edges = np.unique(np.concatenate([sg.edge_index, sg.remote.edge_index]))
    instances = [coll.instance(t) for t in range(3)]
    return verts, edges, instances


class TestWriteReadSlice:
    @pytest.mark.parametrize("slice_format", [1, 2])
    @pytest.mark.parametrize("compress", [False, True])
    def test_formats_agree(self, tmp_path, slice_case, slice_format, compress):
        verts, edges, instances = slice_case
        key = SliceKey(0, 0, 0)
        write_slice(
            tmp_path, key, verts, edges, instances,
            slice_format=slice_format, compress=compress,
        )
        data = read_slice(tmp_path, key)
        assert np.array_equal(data["vertex_rows"], verts)
        assert np.array_equal(data["edge_rows"], edges)
        tweets = data["v__tweets"]
        assert tweets.shape == (3, len(verts))
        for i, inst in enumerate(instances):
            want = inst.vertex_values.column("tweets")[verts]
            assert tweets[i].tolist() == want.tolist()
            np.testing.assert_array_equal(
                data["e__latency"][i], inst.edge_values.column("latency")[edges]
            )

    def test_v2_preferred_over_v1(self, tmp_path, slice_case):
        verts, edges, instances = slice_case
        key = SliceKey(0, 0, 0)
        write_slice(tmp_path, key, verts, edges, instances, slice_format=1)
        write_slice(tmp_path, key, verts, edges, instances[:1], slice_format=2)
        data = read_slice(tmp_path, key)  # the 1-instance v2 file wins
        assert data["v__traffic"].shape[0] == 1

    def test_filename_extension_per_format(self):
        key = SliceKey(1, 2, 3)
        assert slice_filename(key, 2).endswith(".gsl")
        assert slice_filename(key, 1).endswith(".npz")
        assert slice_filename(key) == slice_filename(key, DEFAULT_SLICE_FORMAT)

    def test_unknown_format_rejected(self, tmp_path, slice_case):
        verts, edges, instances = slice_case
        with pytest.raises(ValueError, match="format"):
            write_slice(tmp_path, SliceKey(0, 0, 0), verts, edges, instances, slice_format=3)

    def test_numeric_only_v1_never_unpickles(self, tmp_path, slice_case):
        """allow_objects=None tries the strict npz path first and only
        retries permissively when object columns are actually present."""
        verts, edges, instances = slice_case
        key = SliceKey(0, 0, 0)
        write_slice(tmp_path, key, verts, edges, instances, slice_format=1)
        with pytest.raises(ValueError):
            read_slice(tmp_path, key, allow_objects=False)  # tweets are objects
        data = read_slice(tmp_path, key, allow_objects=None)  # auto-retry
        assert "v__tweets" in data


class TestGoFSFormats:
    @pytest.fixture(scope="class")
    def case(self):
        tpl = make_grid_template(5, 6)
        coll = build_collection(tpl, 6, populate_random(11))
        pg = partition_graph(tpl, 2, HashPartitioner(seed=4))
        return tpl, coll, pg

    @pytest.mark.parametrize("slice_format", [1, 2])
    def test_instances_identical_across_formats(self, case, tmp_path, slice_format):
        tpl, coll, pg = case
        root = tmp_path / f"v{slice_format}"
        manifest = GoFS.write_collection(
            root, pg, coll, packing=3, binning=2, slice_format=slice_format
        )
        assert manifest["slice_format"] == slice_format
        assert GoFS.read_manifest(root)["slice_format"] == slice_format
        for p in range(pg.num_partitions):
            view = GoFS.partition_view(root, p)
            for t in range(len(coll)):
                inst = view.instance(t)
                part = pg.partitions[p]
                for sg in part.subgraphs:
                    rows = sg.vertices
                    np.testing.assert_array_equal(
                        inst.vertex_column("traffic")[rows],
                        coll.instance(t).vertex_column("traffic")[rows],
                    )
                    assert (
                        inst.vertex_column("tweets")[rows].tolist()
                        == coll.instance(t).vertex_column("tweets")[rows].tolist()
                    )

    def test_compressed_v2_smaller_and_identical(self, case, tmp_path):
        tpl, coll, pg = case
        raw_root, zip_root = tmp_path / "raw", tmp_path / "zip"
        GoFS.write_collection(raw_root, pg, coll, packing=3, binning=2)
        GoFS.write_collection(zip_root, pg, coll, packing=3, binning=2, compress=True)
        raw_bytes = sum(f.stat().st_size for f in raw_root.glob("*.gsl"))
        zip_bytes = sum(f.stat().st_size for f in zip_root.glob("*.gsl"))
        assert zip_bytes < raw_bytes
        v_raw = GoFS.partition_view(raw_root, 0).instance(4)
        v_zip = GoFS.partition_view(zip_root, 0).instance(4)
        assert (
            v_raw.vertex_column("traffic").tobytes()
            == v_zip.vertex_column("traffic").tobytes()
        )
