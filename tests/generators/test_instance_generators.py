"""Tests for instance-data generators: latencies, SIR tweets, populators."""

import pickle

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.generators import (
    BackgroundHashtagPopulator,
    CompositePopulator,
    SIRTweetPopulator,
    TrafficPopulator,
    UniformLatencyPopulator,
    make_collection,
    paper_datasets,
    road_latency_collection,
    simulate_sir,
    tweet_collection,
)
from tests.conftest import make_grid_template


class TestUniformLatency:
    def test_range_and_determinism(self):
        tpl = make_grid_template(4, 5)
        coll = road_latency_collection(tpl, 5, delta=5.0, seed=3)
        for t in range(5):
            lat = coll.instance(t).edge_column("latency")
            # Defaults: (0.02·δ, 0.2·δ) — all edges within one window.
            assert np.all(lat >= 0.1) and np.all(lat <= 1.0)
        # Same timestep regenerates identically; different timesteps differ.
        a = coll.instance(2).edge_column("latency")
        b = coll.instance(2).edge_column("latency")
        assert np.array_equal(a, b)
        assert not np.array_equal(a, coll.instance(3).edge_column("latency"))

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            UniformLatencyPopulator(0.0, 1.0)
        with pytest.raises(ValueError):
            UniformLatencyPopulator(5.0, 2.0)

    def test_default_range_scales_with_delta(self):
        tpl = make_grid_template(3, 3)
        coll = road_latency_collection(tpl, 1, delta=10.0, seed=0)
        lat = coll.instance(0).edge_column("latency")
        assert np.all(lat >= 0.2) and np.all(lat <= 2.0)

    def test_picklable(self):
        tpl = make_grid_template(3, 3)
        coll = road_latency_collection(tpl, 4, seed=1)
        clone = pickle.loads(pickle.dumps(coll))
        assert np.array_equal(
            clone.instance(1).edge_column("latency"),
            coll.instance(1).edge_column("latency"),
        )


class TestSimulateSIR:
    def make(self, p=0.5, seed=0, T=10, period=3):
        tpl = make_grid_template(6, 6)
        rng = np.random.default_rng(seed)
        seeds = np.array([0, 35])
        inf, rec = simulate_sir(
            tpl,
            hit_probability=p,
            num_timesteps=T,
            seeds=seeds,
            infectious_period=period,
            rng=rng,
        )
        return tpl, seeds, inf, rec

    def test_seeds_infected_at_zero(self):
        _, seeds, inf, rec = self.make()
        assert np.all(inf[seeds] == 0)
        assert np.all(rec[seeds] == 3)

    def test_recovery_follows_infection(self):
        _, _, inf, rec = self.make()
        infected = inf != -1
        assert np.all(rec[infected] == inf[infected] + 3)
        assert np.all(rec[~infected] == -1)

    def test_infections_adjacent_to_earlier_infection(self):
        tpl, _, inf, rec = self.make(p=0.8)
        for v in np.nonzero(inf > 0)[0]:
            nbr_inf = inf[tpl.out_neighbors(v)]
            # Some neighbor was infectious at inf[v] - 1.
            ok = ((nbr_inf != -1) & (nbr_inf <= inf[v] - 1) & (inf[v] - 1 < rec[tpl.out_neighbors(v)]))
            assert ok.any(), f"vertex {v} infected without an infectious neighbor"

    def test_zero_probability_stays_at_seeds(self):
        _, seeds, inf, _ = self.make(p=0.0)
        assert set(np.nonzero(inf != -1)[0]) == set(seeds)

    def test_invalid_probability(self):
        tpl = make_grid_template(3, 3)
        with pytest.raises(ValueError):
            simulate_sir(
                tpl,
                hit_probability=1.5,
                num_timesteps=5,
                seeds=np.array([0]),
                rng=np.random.default_rng(0),
            )


class TestSIRTweetPopulator:
    def test_tweets_match_schedule(self):
        tpl = make_grid_template(5, 5)
        pop = SIRTweetPopulator(tpl, [7, 8], hit_probability=0.5, num_timesteps=6, seed=1)
        coll = make_collection(tpl, 6, pop)
        for t in range(6):
            tweets = coll.instance(t).vertex_column("tweets")
            for i, meme in enumerate([7, 8]):
                active = pop.active_mask(i, t)
                for v in range(25):
                    assert (meme in tweets[v]) == bool(active[v])

    def test_deterministic_and_picklable(self):
        tpl = make_grid_template(4, 4)
        coll = tweet_collection(tpl, 5, hit_probability=0.4, seed=2)
        clone = pickle.loads(pickle.dumps(coll))
        a = coll.instance(3).vertex_column("tweets")
        b = clone.instance(3).vertex_column("tweets")
        assert all(x == y for x, y in zip(a, b))


class TestComposition:
    def test_composite_order(self):
        tpl = make_grid_template(3, 3)
        sir = SIRTweetPopulator(tpl, [0], hit_probability=0.5, num_timesteps=3, seed=1)
        noise = BackgroundHashtagPopulator([50], rate=2.0, seed=2)
        traffic = TrafficPopulator(seed=3)
        coll = make_collection(tpl, 3, CompositePopulator([sir, noise, traffic]))
        inst = coll.instance(0)
        tweets = inst.vertex_column("tweets")
        assert any(50 in tw for tw in tweets)  # noise applied
        assert inst.vertex_column("traffic").max() > 0

    def test_background_requires_tags(self):
        with pytest.raises(ValueError):
            BackgroundHashtagPopulator([])

    def test_background_negative_rate(self):
        with pytest.raises(ValueError):
            BackgroundHashtagPopulator([1], rate=-1)

    def test_traffic_invalid_range(self):
        with pytest.raises(ValueError):
            TrafficPopulator(5.0, 1.0)


class TestPaperDatasets:
    def test_structure(self):
        data = paper_datasets(scale=800, num_instances=6, seed=1)
        assert set(data) == {"CARN", "WIKI"}
        for name, d in data.items():
            assert d["template"].name == name
            assert len(d["road"]) == 6
            assert len(d["tweets"]) == 6
            assert "latency" in d["template"].edge_schema
            inst = d["tweets"].instance(0)
            assert inst.vertex_values.n == d["template"].num_vertices
