"""Dataset cache: content keys, atomicity, cold/warm identity, tracing."""

import pickle

import numpy as np
import pytest

from repro.generators import DatasetCache, content_key, paper_datasets
from repro.generators.cache import INGEST_CODE_VERSION
from repro.observability.tracer import Tracer
from repro.partition import partition_graph
from repro.partition.metis_like import MetisLikePartitioner


class TestContentKey:
    def test_stable(self):
        params = {"scale": 100, "seed": 0, "p": 0.5}
        assert content_key("datasets", params) == content_key("datasets", params)

    def test_param_order_irrelevant(self):
        assert content_key("x", {"a": 1, "b": 2}) == content_key("x", {"b": 2, "a": 1})

    def test_every_param_matters(self):
        base = {"scale": 100, "seed": 0}
        key = content_key("datasets", base)
        assert content_key("datasets", {**base, "seed": 1}) != key
        assert content_key("datasets", {**base, "scale": 101}) != key
        assert content_key("other", base) != key

    def test_code_version_in_key(self, monkeypatch):
        params = {"scale": 100}
        key = content_key("datasets", params)
        monkeypatch.setattr("repro.generators.cache.INGEST_CODE_VERSION", INGEST_CODE_VERSION + 1)
        assert content_key("datasets", params) != key

    def test_unsupported_type_rejected(self):
        with pytest.raises(TypeError):
            content_key("datasets", {"fn": lambda: None})


class TestDatasetCache:
    def test_miss_then_hit(self, tmp_path):
        cache = DatasetCache(tmp_path)
        assert cache.load("thing", {"a": 1}) is None
        cache.store("thing", {"a": 1}, {"value": 42})
        assert cache.load("thing", {"a": 1}) == {"value": 42}
        assert cache.hits == 1 and cache.misses == 1

    def test_atomic_store_leaves_no_temp_files(self, tmp_path):
        cache = DatasetCache(tmp_path)
        cache.store("thing", {"a": 1}, np.arange(10))
        leftovers = [p for p in tmp_path.iterdir() if p.suffix != ".pkl"]
        assert leftovers == []

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = DatasetCache(tmp_path)
        path = cache.store("thing", {"a": 1}, [1, 2, 3])
        path.write_bytes(b"not a pickle")
        assert cache.load("thing", {"a": 1}) is None

    def test_get_or_build_builds_once(self, tmp_path):
        cache = DatasetCache(tmp_path)
        calls = []
        value = cache.get_or_build("k", {"x": 1}, lambda: calls.append(1) or "built")
        again = cache.get_or_build("k", {"x": 1}, lambda: calls.append(1) or "built")
        assert value == again == "built"
        assert len(calls) == 1


class TestColdWarmIdentity:
    SCALE = 2_000

    def test_datasets_cold_equals_warm(self, tmp_path):
        cache = DatasetCache(tmp_path)
        cold = paper_datasets(self.SCALE, 5, seed=3, cache=cache)
        warm = paper_datasets(self.SCALE, 5, seed=3, cache=cache)
        for name in ("CARN", "WIKI"):
            assert warm[name]["template"].equals(cold[name]["template"])
            for kind in ("road", "tweets"):
                ic, iw = cold[name][kind].instance(2), warm[name][kind].instance(2)
                for col in ic.vertex_values.schema.names:
                    a, b = ic.vertex_values.column(col), iw.vertex_values.column(col)
                    assert np.array_equal(np.asarray(a), np.asarray(b))

    def test_warm_equals_uncached(self, tmp_path):
        cache = DatasetCache(tmp_path)
        paper_datasets(self.SCALE, 5, seed=3, cache=cache)
        warm = paper_datasets(self.SCALE, 5, seed=3, cache=cache)
        fresh = paper_datasets(self.SCALE, 5, seed=3)
        assert warm["WIKI"]["template"].equals(fresh["WIKI"]["template"])

    def test_partition_cold_equals_warm(self, tmp_path):
        cache = DatasetCache(tmp_path)
        data = paper_datasets(self.SCALE, 5, seed=3, cache=cache)
        tpl = data["CARN"]["template"]
        cold = partition_graph(tpl, 4, MetisLikePartitioner(seed=3), cache=cache)
        warm = partition_graph(tpl, 4, MetisLikePartitioner(seed=3), cache=cache)
        assert np.array_equal(cold.vertex_partition, warm.vertex_partition)
        assert np.array_equal(cold.vertex_subgraph, warm.vertex_subgraph)

    def test_partitioner_config_in_key(self, tmp_path):
        cache = DatasetCache(tmp_path)
        data = paper_datasets(self.SCALE, 5, seed=3, cache=cache)
        tpl = data["WIKI"]["template"]
        a = partition_graph(tpl, 4, MetisLikePartitioner(seed=3), cache=cache)
        b = partition_graph(tpl, 4, MetisLikePartitioner(seed=4), cache=cache)
        # Different partitioner seeds must not share a cache entry.
        assert cache.misses >= 3  # datasets + two partition builds
        assert not np.array_equal(a.vertex_partition, b.vertex_partition)

    def test_legacy_and_vectorized_cached_separately(self, tmp_path):
        cache = DatasetCache(tmp_path)
        vec = paper_datasets(self.SCALE, 5, seed=3, cache=cache)
        legacy = paper_datasets(self.SCALE, 5, seed=3, cache=cache, use_vectorized=False)
        assert cache.misses == 2
        assert not vec["WIKI"]["template"].equals(legacy["WIKI"]["template"])

    def test_cache_events_traced(self, tmp_path):
        cache = DatasetCache(tmp_path)
        tr = Tracer()
        paper_datasets(self.SCALE, 5, seed=3, cache=cache, tracer=tr)
        paper_datasets(self.SCALE, 5, seed=3, cache=cache, tracer=tr)
        kinds = [e["kind"] for e in tr.events]
        assert "cache_miss" in kinds
        assert "cache_hit" in kinds
