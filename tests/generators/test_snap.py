"""Tests for the SNAP edge-list loader."""

import gzip

import numpy as np
import pytest

from repro.generators import load_snap_edgelist


SNAP_SAMPLE = """\
# Directed graph (each unordered pair of nodes is saved once)
# Comments galore
10\t20
20\t30
10\t20
30\t10
5\t5
"""


class TestLoader:
    def test_basic_parse(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text(SNAP_SAMPLE)
        tpl = load_snap_edgelist(path, directed=True)
        # ids {5, 10, 20, 30} compacted; self-loop and duplicate dropped.
        assert tpl.num_vertices == 4
        assert tpl.num_edges == 3
        assert np.array_equal(tpl.vertex_ids, [5, 10, 20, 30])
        assert tpl.directed

    def test_undirected_dedup_reversed(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("1\t2\n2\t1\n")
        tpl = load_snap_edgelist(path, directed=False)
        assert tpl.num_edges == 1

    def test_directed_keeps_reversed(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("1\t2\n2\t1\n")
        tpl = load_snap_edgelist(path, directed=True)
        assert tpl.num_edges == 2

    def test_no_dedup(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("1\t2\n1\t2\n")
        tpl = load_snap_edgelist(path, deduplicate=False)
        assert tpl.num_edges == 2

    def test_gzip(self, tmp_path):
        path = tmp_path / "g.txt.gz"
        with gzip.open(path, "wt") as fh:
            fh.write("1\t2\n2\t3\n")
        tpl = load_snap_edgelist(path)
        assert tpl.num_vertices == 3 and tpl.num_edges == 2

    def test_default_name_from_path(self, tmp_path):
        path = tmp_path / "roadNet-CA.txt"
        path.write_text("1\t2\n")
        assert load_snap_edgelist(path).name == "roadNet-CA"
