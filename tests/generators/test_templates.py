"""Tests for the CARN-like and WIKI-like template generators."""

import numpy as np
import pytest

from repro.algorithms.reference import bfs_levels, weakly_connected_components
from repro.generators import (
    grid_dimensions,
    preferential_attachment_edges,
    road_network,
    smallworld_network,
)
from repro.graph import validate_template


class TestGridDimensions:
    def test_approximate_count(self):
        w, h = grid_dimensions(10_000, aspect=4.0)
        assert 10_000 <= w * h <= 11_000
        assert h / w > 2.0

    def test_minimum(self):
        w, h = grid_dimensions(1)
        assert w >= 2 and h >= 2

    def test_invalid(self):
        with pytest.raises(ValueError):
            grid_dimensions(0)


class TestRoadNetwork:
    def test_structure_matches_carn_regime(self):
        tpl = road_network(5000, seed=1)
        validate_template(tpl)
        stats = tpl.stats()
        assert 2.4 < stats["avg_degree"] < 3.2  # CARN ≈ 2.8
        assert stats["max_degree"] <= 4  # grid-bounded

    def test_connected(self):
        tpl = road_network(2000, seed=3)
        labels = weakly_connected_components(tpl)
        assert np.all(labels == 0)

    def test_large_diameter(self):
        tpl = road_network(2000, seed=1)
        d = bfs_levels(tpl, 0)
        assert np.nanmax(d[np.isfinite(d)]) > 50

    def test_deterministic(self):
        a, b = road_network(1000, seed=7), road_network(1000, seed=7)
        assert a.equals(b)
        c = road_network(1000, seed=8)
        assert not a.equals(c)

    def test_vertical_keep_bounds(self):
        with pytest.raises(ValueError):
            road_network(100, vertical_keep=1.5)

    def test_vertical_keep_controls_degree(self):
        sparse = road_network(2000, seed=1, vertical_keep=0.1)
        dense = road_network(2000, seed=1, vertical_keep=0.9)
        assert sparse.stats()["avg_degree"] < dense.stats()["avg_degree"]

    def test_default_schemas(self):
        tpl = road_network(100, seed=0)
        assert "latency" in tpl.edge_schema
        assert "traffic" in tpl.vertex_schema


class TestSmallWorldNetwork:
    def test_structure_matches_wiki_regime(self):
        tpl = smallworld_network(3000, seed=1)
        validate_template(tpl)
        assert tpl.directed
        stats = tpl.stats()
        # Heavy tail: max degree far above the mean.
        assert stats["max_degree"] > 8 * stats["avg_degree"]

    def test_small_diameter(self):
        tpl = smallworld_network(3000, seed=1)
        # Undirected view BFS from a hub-ish vertex: eccentricity is tiny.
        from repro.graph import GraphTemplate

        und = GraphTemplate(tpl.num_vertices, tpl.edge_src, tpl.edge_dst, directed=False)
        d = bfs_levels(und, 0)
        assert np.nanmax(d[np.isfinite(d)]) <= 12

    def test_weakly_connected(self):
        tpl = smallworld_network(1000, seed=2)
        labels = weakly_connected_components(tpl)
        assert np.all(labels == 0)

    def test_deterministic(self):
        a = smallworld_network(500, seed=9)
        b = smallworld_network(500, seed=9)
        assert a.equals(b)

    def test_undirected_option(self):
        tpl = smallworld_network(500, seed=1, directed=False)
        assert not tpl.directed

    def test_reciprocal_fraction_adds_edges(self):
        no_rec = smallworld_network(500, seed=1, reciprocal_fraction=0.0)
        with_rec = smallworld_network(500, seed=1, reciprocal_fraction=0.5)
        assert with_rec.num_edges > no_rec.num_edges

    def test_pa_edges_invalid_params(self):
        with pytest.raises(ValueError):
            preferential_attachment_edges(2, 2, np.random.default_rng(0))

    def test_pa_every_vertex_has_m_attachments(self):
        src, dst = preferential_attachment_edges(50, 2, np.random.default_rng(0))
        for v in range(3, 50):
            assert np.count_nonzero(src == v) == 2
