"""Vectorized-ingest acceptance suite: determinism + distribution equivalence.

The vectorized generator and partitioner paths draw different random
variates than the legacy scalar loops, so old-vs-new bit-identity is not
the bar (and is not required).  What must hold instead:

* **Determinism** — the vectorized paths are bit-identical run-to-run and
  process-to-process for a pinned seed (golden hashes below), and cache
  cold vs warm builds agree exactly;
* **Distribution equivalence** — degree tails (Hill estimator), epidemic
  sizes, connectivity, and the Table 2 edge-cut behaviour (near-zero CARN
  cuts, k-increasing WIKI cuts) match between the legacy and vectorized
  paths at the 20 k bench scale.
"""

import hashlib
import subprocess
import sys

import numpy as np
import pytest

from repro.generators.road import road_network
from repro.generators.sir import SIRTweetPopulator, simulate_sir
from repro.generators.smallworld import preferential_attachment_edges, smallworld_network
from repro.partition.metis_like import MetisLikePartitioner
from repro.partition.stats import edge_cut_fraction


def _digest(*arrays: np.ndarray) -> str:
    d = hashlib.sha256()
    for a in arrays:
        d.update(np.ascontiguousarray(a, dtype=np.int64).tobytes())
    return d.hexdigest()[:16]


# Pinned-seed golden hashes for the vectorized paths (seed 7, small scale).
# A change here means the vectorized algorithms' output changed: bump
# repro.generators.cache.INGEST_CODE_VERSION in the same commit.
GOLDEN_WIKI_EDGES = "d7a71a61b830ed14"
GOLDEN_SIR = "bdd10ac781183fcf"
GOLDEN_CARN_ASSIGN = "daf5afeafc2a2ba7"
GOLDEN_WIKI_ASSIGN = "be8b5add80a3aac7"

_GOLDEN_SNIPPET = """
import hashlib, numpy as np
from repro.generators.smallworld import smallworld_network
from repro.partition.metis_like import MetisLikePartitioner

def digest(*arrays):
    d = hashlib.sha256()
    for a in arrays:
        d.update(np.ascontiguousarray(a, dtype=np.int64).tobytes())
    return d.hexdigest()[:16]

wiki = smallworld_network(5000, seed=7)
assignment = MetisLikePartitioner(seed=7).assign(wiki, 4)
print(digest(wiki.edge_src, wiki.edge_dst), digest(assignment))
"""


def _hill_tail_exponent(degrees: np.ndarray, k: int = 500) -> float:
    """Hill estimator of the degree-distribution tail exponent."""
    tail = np.sort(degrees[degrees > 0])[-k:]
    return 1.0 + 1.0 / float(np.mean(np.log(tail / tail[0])))


class TestGoldenDeterminism:
    def test_wiki_edges_golden(self):
        wiki = smallworld_network(5000, seed=7)
        assert _digest(wiki.edge_src, wiki.edge_dst) == GOLDEN_WIKI_EDGES

    def test_sir_golden(self):
        wiki = smallworld_network(5000, seed=7)
        rng = np.random.default_rng(7)
        inf, rec = simulate_sir(
            wiki,
            hit_probability=0.2,
            num_timesteps=30,
            seeds=rng.choice(5000, size=10, replace=False),
            infectious_period=3,
            rng=rng,
        )
        assert _digest(inf, rec) == GOLDEN_SIR

    def test_partitioner_golden(self):
        carn = road_network(5000, seed=7)
        wiki = smallworld_network(5000, seed=7)
        assert _digest(MetisLikePartitioner(seed=7).assign(carn, 4)) == GOLDEN_CARN_ASSIGN
        assert _digest(MetisLikePartitioner(seed=7).assign(wiki, 4)) == GOLDEN_WIKI_ASSIGN

    def test_golden_across_processes(self):
        """A fresh interpreter reproduces the same hashes (no per-process
        state — hash randomization, import order — leaks into the output)."""
        out = subprocess.run(
            [sys.executable, "-c", _GOLDEN_SNIPPET],
            capture_output=True,
            text=True,
            check=True,
        )
        edges_hash, assign_hash = out.stdout.split()
        assert edges_hash == GOLDEN_WIKI_EDGES
        assert assign_hash == GOLDEN_WIKI_ASSIGN

    def test_repeat_identical(self):
        a = smallworld_network(3000, seed=3)
        b = smallworld_network(3000, seed=3)
        assert a.equals(b)


class TestDistributionEquivalence:
    SCALE = 20_000

    @pytest.fixture(scope="class")
    def pa_graphs(self):
        vec = smallworld_network(self.SCALE, seed=1, use_vectorized=True)
        legacy = smallworld_network(self.SCALE, seed=1, use_vectorized=False)
        return vec, legacy

    def test_edge_counts_match(self, pa_graphs):
        vec, legacy = pa_graphs
        # The deterministic BA edge count is identical; only the directed
        # reciprocal-twin draws differ (a Binomial either way).
        vec_src, _ = preferential_attachment_edges(1000, 2, np.random.default_rng(0))
        leg_src, _ = preferential_attachment_edges(
            1000, 2, np.random.default_rng(0), use_vectorized=False
        )
        assert len(vec_src) == len(leg_src)
        assert abs(len(vec.edge_src) - len(legacy.edge_src)) < 0.02 * len(legacy.edge_src)

    def test_degree_tail_exponent(self, pa_graphs):
        vec, legacy = pa_graphs

        def total_degrees(tpl):
            return np.bincount(
                np.concatenate([tpl.edge_src, tpl.edge_dst]), minlength=tpl.num_vertices
            )

        t_vec = _hill_tail_exponent(total_degrees(vec))
        t_leg = _hill_tail_exponent(total_degrees(legacy))
        # BA tail exponent ~3; the two estimates must agree closely.
        assert 2.0 < t_vec < 4.0
        assert abs(t_vec - t_leg) < 0.3

    def test_connectivity(self, pa_graphs):
        from repro.partition.subgraphs import subgraph_labels

        for tpl in pa_graphs:
            num_sg, _ = subgraph_labels(tpl, np.zeros(tpl.num_vertices, dtype=np.int64))
            assert num_sg == 1  # BA attachment keeps the graph connected

    def test_sir_epidemic_size(self):
        tpl = road_network(self.SCALE, seed=1)
        sizes = {}
        for flag in (True, False):
            rng = np.random.default_rng(5)
            seeds = rng.choice(tpl.num_vertices, size=20, replace=False)
            inf, _rec = simulate_sir(
                tpl,
                hit_probability=0.5,
                num_timesteps=50,
                seeds=seeds,
                infectious_period=3,
                rng=rng,
                use_vectorized=flag,
            )
            sizes[flag] = int((inf != -1).sum())
        # Identical per-edge Bernoulli process: epidemic sizes agree within
        # the process's own run-to-run spread.
        assert sizes[True] > 0.05 * tpl.num_vertices
        assert 0.5 < sizes[True] / sizes[False] < 2.0

    def test_sir_populator_tweets_match_schedule(self):
        tpl = smallworld_network(2000, seed=2)
        pop = SIRTweetPopulator(tpl, [0, 1], hit_probability=0.2, num_timesteps=10, seed=2)
        from repro.generators.populate import make_collection

        coll = make_collection(tpl, 10, pop, delta=5.0)
        inst = coll.instance(4)
        tweets = inst.vertex_values.column("tweets")
        for i, meme in enumerate([0, 1]):
            active = pop.active_mask(i, 4)
            tweeting = np.fromiter(
                (t is not None and meme in t for t in tweets), dtype=bool, count=len(tweets)
            )
            assert np.array_equal(active, tweeting)


class TestTable2CutDirection:
    """Table 2's qualitative behaviour on BOTH implementation paths."""

    SCALE = 20_000

    @pytest.mark.parametrize("use_vectorized", [True, False], ids=["vectorized", "legacy"])
    def test_cut_direction(self, use_vectorized):
        carn = road_network(self.SCALE, seed=0)
        wiki = smallworld_network(self.SCALE, seed=0, use_vectorized=use_vectorized)
        cuts = {}
        for tpl in (carn, wiki):
            for k in (3, 9):
                p = MetisLikePartitioner(seed=0, use_vectorized=use_vectorized)
                cuts[tpl.name, k] = edge_cut_fraction(tpl, p.assign(tpl, k))
        # Road network: near-zero cuts at every k (Table 2: 0.0–0.2 %).
        assert cuts["CARN", 3] < 0.02
        assert cuts["CARN", 9] < 0.03
        # Small-world: large cuts, growing with partition count.
        assert cuts["WIKI", 3] > 0.10
        assert cuts["WIKI", 9] > cuts["WIKI", 3]
