"""Regression tests: every shipped example runs end-to-end and says what it should."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

#: script name → a fragment its stdout must contain.
EXPECTED = {
    "quickstart.py": "earliest arrival",
    "traffic_routing.py": "optimistic",
    "meme_outbreak.py": "inflection point",
    "hashtag_trends.py": "campaign hashtag statistics",
    "custom_computation.py": "total anomaly flags",
    "distributed_cluster.py": "TDSP labels: True",
    "road_closures.py": "most fragmented window",
}


def test_every_example_is_covered():
    """A new example script must register an expectation here."""
    scripts = {p.name for p in EXAMPLES.glob("*.py")}
    assert scripts == set(EXPECTED)


@pytest.mark.parametrize("script", sorted(EXPECTED))
def test_example_runs(script):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, f"{script} failed:\n{proc.stderr[-2000:]}"
    assert EXPECTED[script] in proc.stdout, (
        f"{script} output missing {EXPECTED[script]!r}:\n{proc.stdout[-2000:]}"
    )
