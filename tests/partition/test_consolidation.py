"""Subgraph-aware fragment consolidation (arXiv:1508.04265 balance pass)."""

import numpy as np
import pytest

from repro.partition import compute_stats, decompose, validate_assignment
from repro.partition.metis_like import MetisLikePartitioner
from repro.partition.stats import edge_cut_fraction
from tests.conftest import make_random_template


def _setup(n=400, m=700, seed=0, k=4):
    rng = np.random.default_rng(seed)
    tpl = make_random_template(n, m, rng)
    p = MetisLikePartitioner(seed=seed)
    base = p.assign(tpl, k)
    return tpl, p, base, k


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_never_increases_cut(seed):
    tpl, p, base, k = _setup(seed=seed)
    cap = 1.03 * tpl.num_vertices / k
    before = p.edge_cut(tpl, base)
    after_assignment = p._consolidate_fragments(tpl, base.copy(), k, cap)
    after = p.edge_cut(tpl, after_assignment)
    assert after <= before
    validate_assignment(tpl, after_assignment, k)


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_respects_cap(seed):
    tpl, p, base, k = _setup(seed=seed)
    cap = 1.03 * tpl.num_vertices / k
    sizes_before = np.bincount(base, minlength=k)
    after = p._consolidate_fragments(tpl, base.copy(), k, cap)
    sizes = np.bincount(after, minlength=k)
    # Partitions within the cap before the pass stay within it.
    assert np.all(sizes[sizes_before <= cap] <= cap)


def test_reduces_fragment_spread():
    """Consolidation should not worsen subgraph spread (the pass's purpose)."""
    rng = np.random.default_rng(7)
    tpl = make_random_template(600, 500, rng)  # sparse: many components
    p_off = MetisLikePartitioner(seed=7, subgraph_aware=False)
    p_on = MetisLikePartitioner(seed=7, subgraph_aware=True)
    k = 4
    off = compute_stats(decompose(tpl, np.asarray(p_off.assign(tpl, k)), k))
    on = compute_stats(decompose(tpl, np.asarray(p_on.assign(tpl, k)), k))
    assert edge_cut_fraction(tpl, p_on.assign(tpl, k)) <= edge_cut_fraction(
        tpl, p_off.assign(tpl, k)
    )
    # Subgraph counts stay spread across partitions, never collapse to one.
    assert max(on.subgraphs_per_partition) <= max(off.subgraphs_per_partition) + 1


def test_subgraph_aware_off_skips_pass():
    tpl, _, _, k = _setup()
    a_on = MetisLikePartitioner(seed=0, subgraph_aware=True).assign(tpl, k)
    a_off = MetisLikePartitioner(seed=0, subgraph_aware=False).assign(tpl, k)
    validate_assignment(tpl, a_off, k)
    # Both are valid; the pass is the only difference in the pipeline.
    assert len(a_on) == len(a_off)


def test_connected_graph_untouched():
    """A connected graph partitioned into k subgraphs has nothing to fold."""
    from tests.conftest import make_grid_template

    tpl = make_grid_template(12, 12)
    p = MetisLikePartitioner(seed=1)
    a = p.assign(tpl, 4)
    pg = decompose(tpl, np.asarray(a), 4)
    stats = compute_stats(pg)
    assert sum(stats.subgraphs_per_partition) >= 4
