"""Tests for subgraph decomposition — the Section II-C invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.partition import (
    HashPartitioner,
    MetisLikePartitioner,
    decompose,
    partition_graph,
    subgraph_labels,
)
from tests.conftest import make_grid_template, make_random_template


def check_decomposition_invariants(tpl, pg, assignment):
    """The full Section II-C contract, asserted structurally."""
    n = tpl.num_vertices
    # 1. Every vertex is in exactly one subgraph, in its assigned partition.
    seen = np.zeros(n, dtype=int)
    for sg in pg.subgraphs:
        seen[sg.vertices] += 1
        assert np.all(assignment[sg.vertices] == sg.partition_id)
    assert np.all(seen == 1)
    # 2. vertex_subgraph / vertex_partition agree with the subgraph objects.
    for sg in pg.subgraphs:
        assert np.all(pg.vertex_subgraph[sg.vertices] == sg.subgraph_id)
        assert np.all(pg.vertex_partition[sg.vertices] == sg.partition_id)
    # 3. Local adjacency entries stay inside the subgraph; remote ones leave
    #    the partition; together they cover the template adjacency exactly.
    indptr, indices, eidx = tpl.adjacency
    total_slots = 0
    for sg in pg.subgraphs:
        for lv in range(sg.num_vertices):
            gv = sg.vertices[lv]
            local_dst = set(int(sg.vertices[w]) for w in sg.neighbors(lv))
            remote_rows = sg.remote_edges_of(lv)
            remote_dst = set(int(sg.remote.dst_global[r]) for r in remote_rows)
            tpl_dst = [int(indices[s]) for s in range(indptr[gv], indptr[gv + 1])]
            # Multi-edges: compare as multisets via counts.
            assert sorted(local_dst | remote_dst) == sorted(set(tpl_dst))
            for d in local_dst:
                assert assignment[d] == sg.partition_id
            for d in remote_dst:
                assert assignment[d] != sg.partition_id
            total_slots += len(sg.neighbors(lv)) + len(remote_rows)
    assert total_slots == len(indices)
    # 4. Remote edge metadata is consistent.
    for sg in pg.subgraphs:
        r = sg.remote
        for i in range(len(r)):
            dst = int(r.dst_global[i])
            assert pg.vertex_subgraph[dst] == r.dst_subgraph[i]
            assert pg.vertex_partition[dst] == r.dst_partition[i]
            assert int(sg.vertices[r.src_local[i]]) in (
                int(tpl.edge_src[r.edge_index[i]]),
                int(tpl.edge_dst[r.edge_index[i]]),
            )
    # 5. Subgraphs are weakly connected through local edges.
    for sg in pg.subgraphs:
        if sg.num_vertices <= 1:
            continue
        # BFS over local adjacency (treat as undirected for weak connectivity).
        undirected = [set() for _ in range(sg.num_vertices)]
        for lv in range(sg.num_vertices):
            for w in sg.neighbors(lv):
                undirected[lv].add(int(w))
                undirected[int(w)].add(lv)
        seen_local = {0}
        stack = [0]
        while stack:
            u = stack.pop()
            for w in undirected[u]:
                if w not in seen_local:
                    seen_local.add(w)
                    stack.append(w)
        assert len(seen_local) == sg.num_vertices


class TestDecompose:
    def test_grid_hash(self):
        tpl = make_grid_template(5, 6)
        a = HashPartitioner(seed=1).assign(tpl, 3)
        pg = decompose(tpl, a, 3)
        check_decomposition_invariants(tpl, pg, a)

    def test_grid_metis(self):
        tpl = make_grid_template(6, 6)
        a = MetisLikePartitioner(seed=1).assign(tpl, 3)
        pg = decompose(tpl, a, 3)
        check_decomposition_invariants(tpl, pg, a)

    def test_directed_graph(self, rng):
        tpl = make_random_template(40, 100, rng, directed=True)
        a = HashPartitioner(seed=2).assign(tpl, 3)
        pg = decompose(tpl, a, 3)
        check_decomposition_invariants(tpl, pg, a)

    def test_in_neighbor_subgraphs_directed(self):
        from repro.graph import GraphTemplate

        # 0 -> 1 directed, vertices in different partitions.
        tpl = GraphTemplate(2, [0], [1], directed=True)
        pg = decompose(tpl, np.array([0, 1]), 2)
        sg_of_0 = pg.subgraph_of_vertex(0)
        sg_of_1 = pg.subgraph_of_vertex(1)
        assert np.array_equal(sg_of_0.neighbor_subgraphs, [sg_of_1.subgraph_id])
        assert np.array_equal(sg_of_1.in_neighbor_subgraphs, [sg_of_0.subgraph_id])
        assert len(sg_of_1.neighbor_subgraphs) == 0

    def test_subgraph_ids_partition_major(self):
        tpl = make_grid_template(6, 6)
        pg = partition_graph(tpl, 3)
        parts = [sg.partition_id for sg in pg.subgraphs]
        assert parts == sorted(parts)

    def test_deterministic_labels(self):
        tpl = make_grid_template(6, 6)
        a = HashPartitioner(seed=1).assign(tpl, 3)
        n1, l1 = subgraph_labels(tpl, a)
        n2, l2 = subgraph_labels(tpl, a)
        assert n1 == n2 and np.array_equal(l1, l2)

    def test_empty_partition_allowed(self):
        from repro.graph import GraphTemplate

        tpl = GraphTemplate(2, [0], [1])
        pg = decompose(tpl, np.array([0, 0]), 3)
        assert pg.partitions[1].num_subgraphs == 0
        assert pg.partitions[2].num_subgraphs == 0
        assert pg.num_subgraphs == 1

    def test_isolated_vertices_are_singleton_subgraphs(self):
        from repro.graph import GraphTemplate

        tpl = GraphTemplate(4, [0], [1])  # 2 and 3 isolated
        pg = decompose(tpl, np.zeros(4, dtype=np.int64), 1)
        sizes = sorted(sg.num_vertices for sg in pg.subgraphs)
        assert sizes == [1, 1, 2]

    def test_bad_assignment_shape(self):
        tpl = make_grid_template(3, 3)
        with pytest.raises(ValueError):
            decompose(tpl, np.zeros(5, dtype=np.int64), 2)

    def test_assignment_out_of_range(self):
        tpl = make_grid_template(3, 3)
        with pytest.raises(ValueError):
            decompose(tpl, np.full(9, 5, dtype=np.int64), 2)

    @settings(max_examples=12, deadline=None)
    @given(
        n=st.integers(5, 40),
        m=st.integers(4, 80),
        k=st.integers(1, 4),
        seed=st.integers(0, 2**16),
        directed=st.booleans(),
    )
    def test_invariants_random(self, n, m, k, seed, directed):
        rng = np.random.default_rng(seed)
        tpl = make_random_template(n, m, rng, directed=directed)
        a = HashPartitioner(seed=seed).assign(tpl, k)
        pg = decompose(tpl, a, k)
        check_decomposition_invariants(tpl, pg, a)


class TestPartitionedGraphAPI:
    def test_lookups(self):
        tpl = make_grid_template(4, 4)
        pg = partition_graph(tpl, 2)
        for v in range(tpl.num_vertices):
            sg = pg.subgraph_of_vertex(v)
            assert sg.contains(v)
            assert pg.partition_of_vertex(v) == sg.partition_id
            assert pg.subgraph(sg.subgraph_id) is sg

    def test_partition_vertices_sorted_unique(self):
        tpl = make_grid_template(4, 4)
        pg = partition_graph(tpl, 2)
        for part in pg.partitions:
            v = part.vertices
            assert np.all(np.diff(v) > 0)
            assert part.num_vertices == len(v)
