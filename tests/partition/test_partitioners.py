"""Tests for the hash, BFS, and METIS-like partitioners."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.partition import (
    BFSPartitioner,
    HashPartitioner,
    MetisLikePartitioner,
    edge_cut_fraction,
    validate_assignment,
)
from tests.conftest import make_grid_template, make_random_template

ALL_PARTITIONERS = [
    HashPartitioner(),
    HashPartitioner(seed=3),
    BFSPartitioner(seed=1),
    MetisLikePartitioner(seed=1),
]


@pytest.mark.parametrize("partitioner", ALL_PARTITIONERS, ids=lambda p: f"{type(p).__name__}")
class TestCommonInvariants:
    def test_assignment_valid(self, partitioner):
        tpl = make_grid_template(6, 6)
        for k in (1, 2, 5):
            a = partitioner.assign(tpl, k)
            validate_assignment(tpl, a, k)

    def test_deterministic(self, partitioner):
        tpl = make_grid_template(6, 6)
        a1 = partitioner.assign(tpl, 4)
        a2 = partitioner.assign(tpl, 4)
        assert np.array_equal(a1, a2)

    def test_single_partition(self, partitioner):
        tpl = make_grid_template(4, 4)
        a = partitioner.assign(tpl, 1)
        assert np.all(a == 0)

    def test_invalid_k(self, partitioner):
        tpl = make_grid_template(3, 3)
        with pytest.raises(ValueError):
            partitioner.assign(tpl, 0)

    def test_all_partitions_used(self, partitioner):
        tpl = make_grid_template(8, 8)
        a = partitioner.assign(tpl, 4)
        assert set(np.unique(a)) == {0, 1, 2, 3}


class TestHashPartitioner:
    def test_perfect_balance_seed0(self):
        tpl = make_grid_template(10, 10)
        a = HashPartitioner().assign(tpl, 4)
        counts = np.bincount(a, minlength=4)
        assert counts.max() - counts.min() <= 1

    def test_seed_changes_layout(self):
        tpl = make_grid_template(10, 10)
        a = HashPartitioner(seed=0).assign(tpl, 4)
        b = HashPartitioner(seed=9).assign(tpl, 4)
        assert not np.array_equal(a, b)


class TestBFSPartitioner:
    def test_balance_respected(self):
        tpl = make_grid_template(12, 12)
        p = BFSPartitioner(seed=2, imbalance=1.05)
        a = p.assign(tpl, 4)
        counts = np.bincount(a, minlength=4)
        assert counts.max() <= np.ceil(1.05 * tpl.num_vertices / 4)

    def test_bad_imbalance(self):
        with pytest.raises(ValueError):
            BFSPartitioner(imbalance=0.9)

    def test_better_cut_than_hash_on_grid(self):
        tpl = make_grid_template(15, 15)
        bfs_cut = edge_cut_fraction(tpl, BFSPartitioner(seed=1).assign(tpl, 4))
        hash_cut = edge_cut_fraction(tpl, HashPartitioner(seed=1).assign(tpl, 4))
        assert bfs_cut < hash_cut

    def test_disconnected_graph_covered(self, rng):
        tpl = make_random_template(40, 20, rng)  # likely disconnected
        a = BFSPartitioner(seed=0).assign(tpl, 3)
        validate_assignment(tpl, a, 3)

    def test_empty_graph(self):
        from repro.graph import GraphTemplate

        tpl = GraphTemplate(0, [], [])
        assert len(BFSPartitioner().assign(tpl, 2)) == 0


class TestMetisLike:
    def test_better_cut_than_hash_on_grid(self):
        tpl = make_grid_template(15, 15)
        metis_cut = edge_cut_fraction(tpl, MetisLikePartitioner(seed=1).assign(tpl, 4))
        hash_cut = edge_cut_fraction(tpl, HashPartitioner(seed=1).assign(tpl, 4))
        assert metis_cut < 0.5 * hash_cut

    def test_balance_respected(self):
        tpl = make_grid_template(14, 14)
        p = MetisLikePartitioner(seed=1, imbalance=1.03)
        a = p.assign(tpl, 4)
        counts = np.bincount(a, minlength=4)
        # Allow small slack: multilevel projection can overshoot marginally.
        assert counts.max() <= np.ceil(1.10 * tpl.num_vertices / 4)

    def test_k_greater_than_n(self):
        tpl = make_grid_template(2, 2)
        a = MetisLikePartitioner().assign(tpl, 10)
        validate_assignment(tpl, a, 10)

    def test_directed_graph(self, rng):
        tpl = make_random_template(60, 150, rng, directed=True)
        a = MetisLikePartitioner(seed=4).assign(tpl, 3)
        validate_assignment(tpl, a, 3)

    def test_edge_cut_helper(self):
        tpl = make_grid_template(6, 6)
        p = MetisLikePartitioner(seed=1)
        a = p.assign(tpl, 2)
        # Helper counts unit-weight cut edges = fraction * m.
        assert p.edge_cut(tpl, a) == pytest.approx(
            edge_cut_fraction(tpl, a) * tpl.num_edges
        )

    @settings(max_examples=15, deadline=None)
    @given(
        n=st.integers(10, 60),
        m=st.integers(10, 120),
        k=st.integers(2, 5),
        seed=st.integers(0, 2**16),
    )
    def test_random_graphs_valid(self, n, m, k, seed):
        tpl = make_random_template(n, m, np.random.default_rng(seed))
        a = MetisLikePartitioner(seed=seed).assign(tpl, k)
        validate_assignment(tpl, a, k)


class TestSmallWorldVsRoad:
    """Table 2's qualitative claim: small-world cuts are much larger and grow with k."""

    def test_cut_regimes(self):
        from repro.generators import road_network, smallworld_network

        carn = road_network(3000, seed=1)
        wiki = smallworld_network(3000, seed=1)
        p = MetisLikePartitioner(seed=1)
        carn_cuts = [edge_cut_fraction(carn, p.assign(carn, k)) for k in (3, 6, 9)]
        wiki_cuts = [edge_cut_fraction(wiki, p.assign(wiki, k)) for k in (3, 6, 9)]
        # WIKI cut at every k far exceeds CARN's.
        for c, w in zip(carn_cuts, wiki_cuts):
            assert w > 4 * c
        # Cuts grow with k on both graphs.
        assert carn_cuts[0] < carn_cuts[2]
        assert wiki_cuts[0] < wiki_cuts[2]
