"""Tests for partition statistics (the Table 2 metric and friends)."""

import numpy as np
import pytest

from repro.graph import GraphTemplate
from repro.partition import (
    HashPartitioner,
    compute_stats,
    decompose,
    edge_cut_fraction,
    partition_graph,
)
from tests.conftest import make_grid_template


class TestEdgeCutFraction:
    def test_manual(self):
        tpl = GraphTemplate(4, [0, 1, 2], [1, 2, 3])  # path 0-1-2-3
        assert edge_cut_fraction(tpl, np.array([0, 0, 1, 1])) == pytest.approx(1 / 3)
        assert edge_cut_fraction(tpl, np.array([0, 1, 0, 1])) == 1.0
        assert edge_cut_fraction(tpl, np.zeros(4, dtype=int)) == 0.0

    def test_empty_graph(self):
        tpl = GraphTemplate(3, [], [])
        assert edge_cut_fraction(tpl, np.zeros(3, dtype=int)) == 0.0


class TestComputeStats:
    def test_fields(self):
        tpl = make_grid_template(6, 6, name="g6")
        pg = partition_graph(tpl, 3, HashPartitioner(seed=1))
        stats = compute_stats(pg)
        assert stats.name == "g6"
        assert stats.num_partitions == 3
        assert stats.num_vertices == 36
        assert sum(stats.vertex_counts) == 36
        assert stats.num_subgraphs == pg.num_subgraphs
        assert sum(stats.subgraphs_per_partition) == pg.num_subgraphs
        assert 0.0 <= stats.edge_cut_fraction <= 1.0
        assert stats.edge_cut_percent == pytest.approx(100 * stats.edge_cut_fraction)
        assert 0 < stats.largest_subgraph_fraction <= 1.0
        assert stats.balance >= 1.0

    def test_as_row_keys(self):
        tpl = make_grid_template(4, 4)
        row = compute_stats(partition_graph(tpl, 2)).as_row()
        assert set(row) == {
            "graph",
            "partitions",
            "edge_cut_%",
            "balance",
            "subgraphs",
            "largest_subgraph_%",
        }

    def test_perfect_single_partition(self):
        tpl = make_grid_template(4, 4)
        pg = decompose(tpl, np.zeros(16, dtype=np.int64), 1)
        stats = compute_stats(pg)
        assert stats.edge_cut_fraction == 0.0
        assert stats.balance == 1.0
        assert stats.num_subgraphs == 1
        assert stats.largest_subgraph_fraction == 1.0
