"""Tests for FM boundary refinement and rebalancing."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

import scipy.sparse as sp

from repro.partition.refine import (
    edge_cut_weight,
    partition_connectivity,
    rebalance,
    refine,
)
from tests.conftest import make_grid_template, make_random_template


def grid_csr(rows, cols):
    tpl = make_grid_template(rows, cols)
    n = tpl.num_vertices
    src, dst = tpl.edge_src, tpl.edge_dst
    data = np.ones(2 * len(src))
    adj = sp.coo_matrix(
        (data, (np.concatenate([src, dst]), np.concatenate([dst, src]))), shape=(n, n)
    ).tocsr()
    return adj


class TestConnectivityAndCut:
    def test_connectivity_matrix(self):
        adj = grid_csr(2, 2)  # square: 0-1, 0-2, 1-3, 2-3
        assignment = np.array([0, 0, 1, 1])
        conn = partition_connectivity(adj.indptr, adj.indices, adj.data, assignment, 2)
        # Vertex 0 connects to partition 0 (vertex 1) and partition 1 (vertex 2).
        assert conn[0, 0] == 1 and conn[0, 1] == 1
        assert conn[3, 1] == 1 and conn[3, 0] == 1

    def test_edge_cut_weight(self):
        adj = grid_csr(2, 2)
        assert edge_cut_weight(adj.indptr, adj.indices, adj.data, np.array([0, 0, 1, 1])) == 2.0
        assert edge_cut_weight(adj.indptr, adj.indices, adj.data, np.array([0, 0, 0, 0])) == 0.0
        assert edge_cut_weight(adj.indptr, adj.indices, adj.data, np.array([0, 1, 1, 0])) == 4.0


class TestRefine:
    def test_never_worse_than_feasible_input(self):
        """Never-worse holds relative to the balance-feasible starting point
        (an infeasible input is first force-rebalanced, which may raise the
        cut — balance is a hard constraint)."""
        adj = grid_csr(8, 8)
        n = adj.shape[0]
        vw = np.ones(n)
        rng = np.random.default_rng(0)
        for trial in range(5):
            a0 = rng.integers(0, 3, n).astype(np.int64)
            feasible = rebalance(
                adj.indptr, adj.indices, adj.data, vw, a0, 3, 1.2 * n / 3
            )
            before = edge_cut_weight(adj.indptr, adj.indices, adj.data, feasible)
            a1 = refine(adj.indptr, adj.indices, adj.data, vw, feasible, 3, imbalance=1.2)
            after = edge_cut_weight(adj.indptr, adj.indices, adj.data, a1)
            assert after <= before

    def test_improves_random_assignment_substantially(self):
        adj = grid_csr(10, 10)
        vw = np.ones(100)
        a0 = np.random.default_rng(1).integers(0, 2, 100).astype(np.int64)
        before = edge_cut_weight(adj.indptr, adj.indices, adj.data, a0)
        a1 = refine(adj.indptr, adj.indices, adj.data, vw, a0, 2, imbalance=1.1, passes=10)
        after = edge_cut_weight(adj.indptr, adj.indices, adj.data, a1)
        assert after < 0.6 * before

    def test_respects_balance_cap(self):
        adj = grid_csr(8, 8)
        n = adj.shape[0]
        vw = np.ones(n)
        a0 = np.random.default_rng(2).integers(0, 2, n).astype(np.int64)
        a1 = refine(adj.indptr, adj.indices, adj.data, vw, a0, 2, imbalance=1.05)
        counts = np.bincount(a1, minlength=2)
        assert counts.max() <= np.ceil(1.05 * n / 2)

    def test_input_not_mutated(self):
        adj = grid_csr(5, 5)
        a0 = np.random.default_rng(3).integers(0, 2, 25).astype(np.int64)
        snapshot = a0.copy()
        refine(adj.indptr, adj.indices, adj.data, np.ones(25), a0, 2)
        assert np.array_equal(a0, snapshot)


class TestRebalance:
    def test_fixes_overload(self):
        adj = grid_csr(6, 6)
        n = adj.shape[0]
        vw = np.ones(n)
        a = np.zeros(n, dtype=np.int64)  # everything in partition 0
        cap = 1.03 * n / 2
        out = rebalance(adj.indptr, adj.indices, adj.data, vw, a, 2, cap)
        counts = np.bincount(out, minlength=2)
        assert counts[0] <= cap

    def test_noop_when_balanced(self):
        adj = grid_csr(4, 4)
        a = (np.arange(16) % 2).astype(np.int64)
        out = rebalance(adj.indptr, adj.indices, adj.data, np.ones(16), a, 2, 9.0)
        assert np.array_equal(out, a)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 2**16), k=st.integers(2, 4))
    def test_refine_valid_on_random_graphs(self, seed, k):
        rng = np.random.default_rng(seed)
        tpl = make_random_template(30, 60, rng)
        n = tpl.num_vertices
        src, dst = tpl.edge_src, tpl.edge_dst
        if len(src) == 0:
            return
        adj = sp.coo_matrix(
            (
                np.ones(2 * len(src)),
                (np.concatenate([src, dst]), np.concatenate([dst, src])),
            ),
            shape=(n, n),
        ).tocsr()
        a0 = rng.integers(0, k, n).astype(np.int64)
        # Compare against the balance-feasible starting point: forcing an
        # over-capacity input under the cap may legitimately raise the cut.
        feasible = rebalance(
            adj.indptr, adj.indices, adj.data, np.ones(n), a0, k, 1.03 * n / k
        )
        a1 = refine(adj.indptr, adj.indices, adj.data, np.ones(n), feasible, k)
        assert a1.min() >= 0 and a1.max() < k
        assert edge_cut_weight(adj.indptr, adj.indices, adj.data, a1) <= edge_cut_weight(
            adj.indptr, adj.indices, adj.data, feasible
        )
