"""Tests for running vertex-centric programs on the TI-BSP engine."""

import math

import numpy as np
import pytest

from repro.algorithms import reference as ref
from repro.baselines import (
    VertexBFS,
    VertexCentricAdapter,
    VertexComputation,
    VertexPageRank,
    VertexSSSP,
    vertex_values_from_result,
)
from repro.core import run_application
from repro.graph import build_collection
from repro.partition import HashPartitioner, MetisLikePartitioner, partition_graph
from tests.conftest import make_grid_template, make_random_template, populate_random


def build_case(seed=0, n=40, m=90, k=3, directed=False):
    rng = np.random.default_rng(seed)
    tpl = make_random_template(n, m, rng, directed=directed)
    coll = build_collection(tpl, 2, populate_random(seed))
    pg = partition_graph(tpl, k, HashPartitioner(seed=seed))
    return tpl, coll, pg


class TestAdaptedAlgorithms:
    @pytest.mark.parametrize("k", [1, 2, 4])
    def test_sssp(self, k):
        tpl, coll, pg = build_case(1, k=k)
        adapter = VertexCentricAdapter(VertexSSSP(0), pg.vertex_subgraph, "latency")
        res = run_application(adapter, pg, coll, timestep_range=(0, 1))
        got = np.array(vertex_values_from_result(res, tpl.num_vertices), dtype=float)
        want = ref.single_source_shortest_paths(
            tpl, 0, coll.instance(0).edge_column("latency")
        )
        np.testing.assert_allclose(
            np.nan_to_num(got, posinf=1e18), np.nan_to_num(want, posinf=1e18)
        )

    def test_bfs_directed(self):
        tpl, coll, pg = build_case(2, directed=True)
        adapter = VertexCentricAdapter(VertexBFS(0), pg.vertex_subgraph)
        res = run_application(adapter, pg, coll, timestep_range=(0, 1))
        got = np.array(vertex_values_from_result(res, tpl.num_vertices), dtype=float)
        want = ref.bfs_levels(tpl, 0)
        np.testing.assert_allclose(
            np.nan_to_num(got, posinf=1e18), np.nan_to_num(want, posinf=1e18)
        )

    def test_pagerank(self):
        tpl, coll, pg = build_case(3)
        adapter = VertexCentricAdapter(VertexPageRank(12), pg.vertex_subgraph)
        res = run_application(adapter, pg, coll, timestep_range=(0, 1))
        got = np.array(vertex_values_from_result(res, tpl.num_vertices), dtype=float)
        np.testing.assert_allclose(got, ref.pagerank(tpl, iterations=12), atol=1e-12)

    def test_matches_native_pregel_engine(self):
        """Adapter and standalone Pregel engine agree value-for-value."""
        from repro.baselines import PregelEngine

        tpl, coll, pg = build_case(4)
        adapter = VertexCentricAdapter(VertexSSSP(0), pg.vertex_subgraph, "latency")
        res = run_application(adapter, pg, coll, timestep_range=(0, 1))
        got = vertex_values_from_result(res, tpl.num_vertices)
        eng = PregelEngine(tpl, 3, instance=coll.instance(0), weight_attr="latency")
        native = eng.run(VertexSSSP(0), initial_active=[0]).values
        assert [
            (a if not math.isinf(a) else None) for a in map(float, got)
        ] == [(b if not math.isinf(b) else None) for b in map(float, native)]


class TestAdapterMechanics:
    def test_local_message_delivered_next_vertex_superstep(self):
        tpl = make_grid_template(1, 3)  # path 0-1-2 in few subgraphs
        coll = build_collection(tpl, 1)
        pg = partition_graph(tpl, 1, HashPartitioner())
        log = []

        class Probe(VertexComputation):
            def initial_value(self, v):
                return None

            def compute(self, ctx):
                log.append((ctx.superstep, ctx.vertex, list(ctx.messages)))
                if ctx.superstep == 0 and ctx.vertex == 0:
                    ctx.send(1, "local-hop")
                ctx.vote_to_halt()

        adapter = VertexCentricAdapter(Probe(), pg.vertex_subgraph)
        run_application(adapter, pg, coll, timestep_range=(0, 1))
        received = [e for e in log if e[1] == 1 and e[2]]
        assert received == [(1, 1, ["local-hop"])]

    def test_cross_subgraph_message(self):
        tpl = make_grid_template(2, 4)
        coll = build_collection(tpl, 1)
        pg = partition_graph(tpl, 2, HashPartitioner(seed=1))
        # Pick two vertices in different subgraphs.
        a = int(pg.subgraphs[0].vertices[0])
        b = int(pg.subgraphs[-1].vertices[0])
        seen = {}

        class Cross(VertexComputation):
            def compute(self, ctx):
                if ctx.superstep == 0 and ctx.vertex == a:
                    ctx.send(b, "far")
                if ctx.messages:
                    seen[ctx.vertex] = list(ctx.messages)
                ctx.vote_to_halt()

        adapter = VertexCentricAdapter(Cross(), pg.vertex_subgraph)
        run_application(adapter, pg, coll, timestep_range=(0, 1))
        assert seen == {b: ["far"]}

    def test_per_instance_independence(self):
        """Each timestep re-initializes vertex values (independent pattern)."""
        tpl, coll, pg = build_case(5)
        adapter = VertexCentricAdapter(VertexBFS(0), pg.vertex_subgraph)
        res = run_application(adapter, pg, coll)  # two timesteps
        got0 = vertex_values_from_result(res, tpl.num_vertices, timestep=0)
        got1 = vertex_values_from_result(res, tpl.num_vertices, timestep=1)
        assert got0 == got1  # same topology, fresh state each instance
