"""Tests for the vertex-centric Pregel engine and its algorithms."""

import math

import numpy as np
import pytest

from repro.algorithms import reference as ref
from repro.baselines import (
    PregelEngine,
    VertexBFS,
    VertexComputation,
    VertexPageRank,
    VertexSSSP,
    fig5b_comparison,
)
from repro.generators import road_latency_collection
from repro.graph import build_collection
from repro.partition import partition_graph
from tests.conftest import make_grid_template, make_random_template, populate_random


class TestEngineSemantics:
    def test_message_delivered_next_superstep(self):
        tpl = make_grid_template(1, 3)  # path 0-1-2

        class Hop(VertexComputation):
            def initial_value(self, v):
                return []

            def compute(self, ctx):
                ctx.value = ctx.value + [(ctx.superstep, list(ctx.messages))]
                if ctx.superstep == 0 and ctx.vertex == 0:
                    ctx.send(1, "hi")
                ctx.vote_to_halt()

        eng = PregelEngine(tpl, 2)
        res = eng.run(Hop())
        log_v1 = res.values[1]
        assert log_v1[0] == (0, [])
        assert log_v1[1] == (1, ["hi"])

    def test_halted_vertex_not_recomputed(self):
        tpl = make_grid_template(1, 2)
        counts = {0: 0, 1: 0}

        class Count(VertexComputation):
            def compute(self, ctx):
                counts[ctx.vertex] += 1
                if ctx.vertex == 0 and ctx.superstep < 3:
                    ctx.send(0, "self")
                ctx.vote_to_halt()

        PregelEngine(tpl, 1).run(Count())
        assert counts[0] == 4  # kept alive by self-messages
        assert counts[1] == 1  # halted after superstep 0

    def test_initial_active_restricts_superstep0(self):
        tpl = make_grid_template(1, 4)
        seen = []

        class Who(VertexComputation):
            def compute(self, ctx):
                seen.append(ctx.vertex)
                ctx.vote_to_halt()

        PregelEngine(tpl, 2).run(Who(), initial_active=[2])
        assert seen == [2]

    def test_max_supersteps_guard(self):
        tpl = make_grid_template(1, 2)

        class Forever(VertexComputation):
            def compute(self, ctx):
                ctx.send(ctx.vertex, "again")

        with pytest.raises(RuntimeError, match="max_supersteps"):
            PregelEngine(tpl, 1, max_supersteps=5).run(Forever())

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            PregelEngine(make_grid_template(2, 2), 0)

    def test_weight_attr_requires_instance(self):
        with pytest.raises(ValueError, match="instance"):
            PregelEngine(make_grid_template(2, 2), 1, weight_attr="latency")

    def test_metrics_recorded_per_worker(self):
        tpl = make_grid_template(3, 3)
        eng = PregelEngine(tpl, 3)
        res = eng.run(VertexBFS(0), initial_active=[0])
        assert res.supersteps > 1
        assert res.total_wall_s > 0
        assert len(res.metrics.partition_breakdown()) == 3


class TestVertexAlgorithms:
    def test_bfs_matches_reference(self, rng):
        tpl = make_random_template(40, 80, rng)
        res = PregelEngine(tpl, 3).run(VertexBFS(0), initial_active=[0])
        got = np.array(res.values)
        want = ref.bfs_levels(tpl, 0)
        np.testing.assert_allclose(
            np.nan_to_num(got, posinf=1e18), np.nan_to_num(want, posinf=1e18)
        )

    def test_sssp_matches_reference(self, rng):
        tpl = make_random_template(40, 80, rng)
        coll = build_collection(tpl, 1, populate_random(4))
        eng = PregelEngine(tpl, 3, instance=coll.instance(0), weight_attr="latency")
        res = eng.run(VertexSSSP(0), initial_active=[0])
        got = np.array(res.values)
        want = ref.single_source_shortest_paths(
            tpl, 0, coll.instance(0).edge_column("latency")
        )
        np.testing.assert_allclose(
            np.nan_to_num(got, posinf=1e18), np.nan_to_num(want, posinf=1e18)
        )

    def test_pagerank_matches_reference(self, rng):
        tpl = make_random_template(30, 70, rng, directed=True)
        res = PregelEngine(tpl, 2).run(VertexPageRank(12))
        np.testing.assert_allclose(
            np.array(res.values), ref.pagerank(tpl, iterations=12), atol=1e-12
        )

    def test_pagerank_invalid_iterations(self):
        with pytest.raises(ValueError):
            VertexPageRank(0)

    def test_bfs_supersteps_track_eccentricity(self):
        """Vertex-centric BFS needs ~one superstep per hop — the structural
        disadvantage Fig 5b exploits."""
        tpl = make_grid_template(1, 30)  # path, eccentricity 29 from vertex 0
        res = PregelEngine(tpl, 2).run(VertexBFS(0), initial_active=[0])
        assert res.supersteps >= 29


class TestFig5bHarness:
    def test_ordering_holds(self):
        tpl = make_grid_template(8, 30, name="CARN-ish")
        coll = road_latency_collection(tpl, 10, seed=1)
        pg = partition_graph(tpl, 3)
        row = fig5b_comparison(pg, coll)
        # Paper's shape: Giraph's single SSSP is slower than GoFFish's SSSP,
        # and slower than GoFFish TDSP over the whole collection.
        assert row.giraph_sssp_1x > row.goffish_sssp_1x
        assert row.giraph_sssp_1x > row.goffish_tdsp_50x
        assert row.goffish_tdsp_50x >= row.goffish_sssp_1x
        assert row.giraph_supersteps > row.goffish_sssp_supersteps
        assert set(row.as_row()) >= {"graph", "Giraph SSSP 1x (s)"}
