#!/usr/bin/env python
"""Evolving topology: road closures, reachability, and network fragmentation.

The paper's data model handles slow topology change through the
``is_exists`` attribute (Section II-A).  This example gives a road network
periodic closures (maintenance windows) and asks two questions the TI-BSP
extensions answer:

* **temporal reachability** — starting from the depot at t0, when does each
  district become reachable as closures open and close?  (Sequentially
  dependent pattern.)
* **community evolution** — how does the road network fragment and re-knit
  over time?  Components per timestep, plus split/merge events between
  consecutive instances.  (Eventually dependent pattern with a Merge.)

Run:  python examples/road_closures.py
"""

import numpy as np

from repro import partition_graph, road_network, run_application
from repro.algorithms import (
    CommunityEvolutionComputation,
    TemporalReachabilityComputation,
    largest_subgraph_in_partition,
    reached_timesteps_from_result,
)
from repro.analysis import render_series
from repro.generators import PeriodicExistencePopulator, make_collection
from repro.graph import AttributeSchema, AttributeSpec

SCALE = 2_500
INSTANCES = 16


def main() -> None:
    base = road_network(SCALE, seed=31)
    # Rebuild with an is_exists edge schema (closures toggle segments).
    from repro.graph import GraphTemplate

    template = GraphTemplate(
        base.num_vertices,
        base.edge_src,
        base.edge_dst,
        edge_schema=AttributeSchema([AttributeSpec("is_exists", "bool", default=True)]),
        name="city-with-closures",
    )
    closures = PeriodicExistencePopulator(
        template, min_period=4, max_period=8, duty=0.55, always_on_fraction=0.55, seed=31
    )
    collection = make_collection(template, INSTANCES, closures)
    pg = partition_graph(template, 4)

    closed_frac = [1.0 - closures.exists_at(t).mean() for t in range(INSTANCES)]
    print(f"road network: {template.num_vertices} intersections, "
          f"{template.num_edges} segments; "
          f"{100 * np.mean(closed_frac):.0f}% closed on average\n")

    # --- temporal reachability from the depot --------------------------------------
    reach = run_application(TemporalReachabilityComputation(0), pg, collection)
    reached = reached_timesteps_from_result(reach)
    per_step = np.zeros(INSTANCES, dtype=int)
    for _v, t in reached.items():
        per_step[t] += 1
    print(f"depot reaches {len(reached)}/{template.num_vertices} intersections "
          f"within {INSTANCES} windows")
    print(render_series(per_step, label="newly reachable per window", fmt="{:d}"))
    if len(reached) < template.num_vertices:
        blocked = template.num_vertices - len(reached)
        print(f"{blocked} intersections stay cut off for the whole horizon")

    # --- community evolution ----------------------------------------------------------
    comp = CommunityEvolutionComputation(
        template.num_vertices, largest_subgraph_in_partition(pg, 0)
    )
    evo = run_application(comp, pg, collection)
    (_sg, summary), = evo.merge_outputs
    print("\nnetwork fragments (non-singleton components) per window:")
    print(render_series(summary.num_communities, label="  components", fmt="{:d}"))
    print("transitions between consecutive windows:")
    print(render_series(summary.splits, label="  splits ", fmt="{:d}"))
    print(render_series(summary.merges, label="  merges ", fmt="{:d}"))
    worst = int(np.argmax(summary.num_communities))
    print(f"\nmost fragmented window: t={worst} "
          f"({summary.num_communities[worst]} disconnected districts)")


if __name__ == "__main__":
    main()
