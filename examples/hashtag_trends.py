#!/usr/bin/env python
"""Hashtag trend statistics with the eventually dependent pattern (§III-A).

Tracks three campaign hashtags spreading epidemically over a social network,
buried in random background chatter, and uses Hashtag Aggregation — each
timestep counted independently, merged at the end — to compute per-hashtag
count series, totals, growth rates and peaks.

Run:  python examples/hashtag_trends.py
"""

from repro import (
    HashtagAggregationComputation,
    partition_graph,
    smallworld_network,
    run_application,
)
from repro.generators import (
    BackgroundHashtagPopulator,
    CompositePopulator,
    SIRTweetPopulator,
    make_collection,
)
from repro.analysis import render_bar_chart, render_table

SCALE = 4_000
INSTANCES = 30
CAMPAIGNS = {0: "#launch", 1: "#sale", 2: "#recall"}


def main() -> None:
    network = smallworld_network(SCALE, seed=23)
    sir = SIRTweetPopulator(
        network, list(CAMPAIGNS), hit_probability=0.12,
        num_timesteps=INSTANCES, seeds_per_meme=6, seed=23,
    )
    noise = BackgroundHashtagPopulator(list(range(100, 120)), rate=0.3, seed=24)
    tweets = make_collection(network, INSTANCES, CompositePopulator([sir, noise]))
    pg = partition_graph(network, 4)

    rows = []
    series = {}
    for tag, label in CAMPAIGNS.items():
        comp = HashtagAggregationComputation.for_partitioned_graph(pg, tag)
        result = run_application(comp, pg, tweets)
        (_master, summary), = result.merge_outputs
        series[label] = summary.counts
        growth = summary.rate_of_change
        rows.append(
            {
                "hashtag": label,
                "total": summary.total,
                "peak_t": summary.peak_timestep,
                "peak_count": int(summary.counts.max()),
                "max_growth/step": int(growth.max()) if len(growth) else 0,
                "merge_supersteps": result.metrics.merge_supersteps,
            }
        )

    print(f"network: {network.num_vertices} users; "
          f"{INSTANCES} timesteps; 20 background hashtags as noise\n")
    print(render_table(rows, title="campaign hashtag statistics"))
    busiest = max(series, key=lambda k: series[k].sum())
    print()
    print(render_bar_chart(
        series[busiest], [f"t={t:02d}" for t in range(INSTANCES)],
        width=40, title=f"count per timestep — {busiest}",
    ))


if __name__ == "__main__":
    main()
