#!/usr/bin/env python
"""End-to-end distributed deployment: GoFS store + process-per-partition cluster.

The closest single-machine analogue of the paper's AWS deployment:

1. partition a road network into 6 partitions (one per "VM");
2. write the 50-instance collection into a GoFS store (slice files with
   temporal packing 10, subgraph binning 5 — the paper's settings);
3. run TDSP on a **process cluster**: each partition lives in its own OS
   process, loads *only its own slices* from the store, and exchanges
   messages with the driver over pipes (the BSP barrier);
4. compare with the in-process serial engine: identical results, and show
   the per-partition utilization split plus the every-10th-timestep GoFS
   load events.

Run:  python examples/distributed_cluster.py
"""

import tempfile
import time

import numpy as np

from repro import (
    EngineConfig,
    TDSPComputation,
    partition_graph,
    road_latency_collection,
    road_network,
    run_application,
)
from repro.algorithms import tdsp_labels_from_result
from repro.analysis import render_table, utilization_rows
from repro.storage import GoFS

SCALE = 6_000
INSTANCES = 50
PARTITIONS = 6


def main() -> None:
    template = road_network(SCALE, seed=3)
    collection = road_latency_collection(template, INSTANCES, seed=3)
    pg = partition_graph(template, PARTITIONS)
    comp = TDSPComputation(0, halt_when_stalled=True)

    with tempfile.TemporaryDirectory() as root:
        manifest = GoFS.write_collection(root, pg, collection)
        n_slices = sum(len(bins) for bins in manifest["bins"]) * (
            (INSTANCES + manifest["packing"] - 1) // manifest["packing"]
        )
        print(f"GoFS store: {n_slices} slice files "
              f"(packing={manifest['packing']}, binning={manifest['binning']})")

        runs = {}
        for executor in ("serial", "process"):
            views = GoFS.partition_views(root)
            start = time.perf_counter()
            res = run_application(
                comp, pg, collection,
                sources=views, config=EngineConfig(executor=executor),
            )
            real = time.perf_counter() - start
            runs[executor] = res
            print(f"\n{executor} cluster: {res.timesteps_executed} timesteps in "
                  f"{real:.2f}s real ({res.total_wall_s:.3f}s simulated)")
            if executor == "serial":
                events = [(t, round(1e3 * s, 2)) for t, s in views[0].load_events]
                print(f"  partition 0 slice loads (timestep, ms): {events}")

        a = tdsp_labels_from_result(runs["serial"], template.num_vertices)
        b = tdsp_labels_from_result(runs["process"], template.num_vertices)
        same = np.allclose(np.nan_to_num(a, posinf=1e18), np.nan_to_num(b, posinf=1e18))
        print(f"\nserial and process clusters agree on all "
              f"{template.num_vertices} TDSP labels: {same}")

        print()
        print(render_table(
            [u.as_row() for u in utilization_rows(runs["serial"])],
            title="per-partition utilization (serial engine, simulated)",
        ))


if __name__ == "__main__":
    main()
