#!/usr/bin/env python
"""Time-aware routing on a city road network (the paper's Section I motivation).

Reproduces the paper's Fig 5a worked example at city scale: a static
shortest path computed on the *current* traffic snapshot can be badly wrong
once traffic changes mid-journey, while TDSP plans with the full time-series
and may even *wait* at an intersection for congestion to clear.

The script:

* generates a CARN-like road network and 30 five-minute traffic snapshots;
* computes (a) naive SSSP on snapshot 0 and (b) TDSP over the series;
* reports how optimistic the naive estimates are, and which destinations'
  time-aware routes involve waiting (arrival exactly at a window boundary).

Run:  python examples/traffic_routing.py
"""

import numpy as np

from repro import (
    SSSPComputation,
    TDSPComputation,
    partition_graph,
    road_latency_collection,
    road_network,
    run_application,
)
from repro.algorithms import sssp_labels_from_result, tdsp_labels_from_result
from repro.analysis import frontier_totals, render_series

SCALE = 4_000
INSTANCES = 30
DELTA = 5.0  # minutes per snapshot
PARTITIONS = 4


def main() -> None:
    template = road_network(SCALE, seed=7)
    # Wider latency spread than the bench default, so mid-window blocking —
    # the phenomenon that separates TDSP from SSSP — is common.
    collection = road_latency_collection(
        template, INSTANCES, delta=DELTA, seed=7, low=0.05 * DELTA, high=0.9 * DELTA
    )
    pg = partition_graph(template, PARTITIONS)
    depot = 0

    naive = run_application(
        SSSPComputation(depot, "latency"), pg, collection, timestep_range=(0, 1)
    )
    naive_eta = sssp_labels_from_result(naive, template.num_vertices)

    tdsp = run_application(
        TDSPComputation(depot, halt_when_stalled=True), pg, collection
    )
    true_eta = tdsp_labels_from_result(tdsp, template.num_vertices)

    both = np.isfinite(naive_eta) & np.isfinite(true_eta)
    optimism = true_eta[both] - naive_eta[both]
    print(f"road network: {template.num_vertices} intersections, "
          f"{template.num_edges} road segments, {PARTITIONS} partitions")
    print(f"reachable within {INSTANCES * DELTA:.0f} min: {int(both.sum())} intersections")
    print(f"\nnaive snapshot-0 ETAs are optimistic by "
          f"{optimism.mean():.1f} min on average "
          f"(p95 {np.percentile(optimism, 95):.1f} min, max {optimism.max():.1f} min)")
    worst = np.argsort(optimism)[-5:][::-1]
    ids = np.nonzero(both)[0][worst]
    print("worst five destinations (naive ETA → actual time-aware ETA, minutes):")
    for v in ids:
        print(f"  intersection {v:6d}: {naive_eta[v]:6.1f} → {true_eta[v]:6.1f}")

    # Waiting: a time-aware arrival pinned to a window boundary means the
    # optimal plan idles at some intersection until traffic changes.
    boundary = np.isclose(true_eta[both] % DELTA, 0.0)
    print(f"\nroutes whose optimal plan includes waiting at a boundary: "
          f"{int(boundary.sum())}")

    print("\nintersections newly reached per 5-minute window:")
    print(render_series(frontier_totals(tdsp), label="  frontier", fmt="{:d}"))


if __name__ == "__main__":
    main()
