#!/usr/bin/env python
"""Tracking a viral meme through a social network (paper Section III-B).

Generates a WIKI-like small-world social network, seeds a meme that spreads
by the SIR epidemic model, and runs the sequentially dependent Meme Tracking
algorithm to recover, per timestep, who was newly reached — the analytics
the paper motivates: spread rate over time, the inflection point, and the
key spreaders (high-degree users whose coloring precedes a burst).

Run:  python examples/meme_outbreak.py
"""

import numpy as np

from repro import (
    MemeTrackingComputation,
    partition_graph,
    smallworld_network,
    tweet_collection,
    run_application,
)
from repro.algorithms import colored_timesteps_from_result
from repro.analysis import frontier_totals, render_bar_chart

SCALE = 5_000
INSTANCES = 40
MEME = 0


def main() -> None:
    network = smallworld_network(SCALE, seed=11)
    tweets = tweet_collection(
        network, INSTANCES, memes=[MEME], hit_probability=0.12,
        seeds_per_meme=8, infectious_period=3, seed=11,
    )
    pg = partition_graph(network, 4)

    result = run_application(MemeTrackingComputation(MEME), pg, tweets)
    colored = colored_timesteps_from_result(result)
    per_step = frontier_totals(result, num_timesteps=INSTANCES)

    print(f"social network: {network.num_vertices} users, "
          f"{network.num_edges} follow edges")
    print(f"meme reached {len(colored)} users over {INSTANCES} timesteps\n")

    print(render_bar_chart(
        per_step, [f"t={t:02d}" for t in range(INSTANCES)],
        width=40, title="newly reached users per timestep",
    ))

    # Inflection point: the timestep with the largest jump in spread rate.
    rate = np.diff(per_step)
    inflection = int(np.argmax(rate)) + 1
    print(f"\ninflection point: timestep {inflection} "
          f"(+{rate[inflection - 1]} users over the previous step)")

    # Key spreaders: earliest-colored users with the highest out-degree.
    degrees = network.degrees
    early = [(v, t) for v, t in colored.items() if t <= inflection]
    spreaders = sorted(early, key=lambda vt: -degrees[vt[0]])[:5]
    print("\nlikely key spreaders (reached before the inflection, by audience):")
    for v, t in spreaders:
        print(f"  user {v:5d}: audience {int(degrees[v]):4d}, reached at t={t}")


if __name__ == "__main__":
    main()
