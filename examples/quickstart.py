#!/usr/bin/env python
"""Quickstart: build a time-series graph, partition it, run TDSP.

Walks through the whole public API in ~40 lines of real code:

1. build a graph *template* (the time-invariant topology + attribute schema);
2. attach a *collection* of instances (time-variant attribute values);
3. partition the template into subgraphs (one partition per simulated host);
4. run the paper's Time-Dependent Shortest Path as a TI-BSP application;
5. read results and runtime metrics.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    GraphTemplateBuilder,
    TDSPComputation,
    build_collection,
    partition_graph,
    run_application,
)
from repro.algorithms import tdsp_labels_from_result


def main() -> None:
    # 1. A small road network: 12 intersections around two city blocks.
    builder = GraphTemplateBuilder(name="two-blocks").edge_attribute("latency", "float")
    for name in "ABCDEFGHIJKL":
        builder.add_vertex(name)
    roads = [
        "AB", "BC", "CD", "AE", "BF", "CG", "DH",
        "EF", "FG", "GH", "EI", "FJ", "GK", "HL", "IJ", "JK", "KL",
    ]
    for a, b in roads:
        builder.add_edge(a, b)
    template = builder.build()

    # 2. Six instances, 5 minutes apart: travel times vary with "traffic".
    def rush_hour(instance, timestep):
        rng = np.random.default_rng(100 + timestep)
        base = rng.uniform(1.0, 3.0, template.num_edges)
        congestion = 1.0 + 2.0 * np.sin(np.pi * timestep / 5)  # builds then eases
        instance.edge_values.set_column("latency", base * congestion)

    collection = build_collection(template, 6, rush_hour, delta=5.0)

    # 3. Partition into 3 hosts (METIS-like multilevel partitioner by default).
    pg = partition_graph(template, 3)
    print(f"partitioned {template.name!r} into {pg.num_partitions} partitions, "
          f"{pg.num_subgraphs} subgraphs")

    # 4. Earliest arrival everywhere, departing vertex A at t=0.
    source = builder.vertex_index("A")
    result = run_application(TDSPComputation(source), pg, collection)

    # 5. Results + metrics.
    labels = tdsp_labels_from_result(result, template.num_vertices)
    print("\nearliest arrival (minutes after departure):")
    for name in "ABCDEFGHIJKL":
        v = builder.vertex_index(name)
        arrival = f"{labels[v]:6.2f}" if np.isfinite(labels[v]) else "  unreachable"
        print(f"  {name}: {arrival}")
    print(f"\nexecuted {result.timesteps_executed} timesteps "
          f"({result.metrics.total_supersteps()} supersteps, "
          f"{result.metrics.total_messages()} messages, "
          f"simulated wall {result.total_wall_s:.4f}s)")


if __name__ == "__main__":
    main()
