#!/usr/bin/env python
"""Writing your own TI-BSP computation: sensor-grid anomaly detection.

Demonstrates the full user-facing API on a scenario from the paper's intro
(environmental sensor networks): a grid of temperature sensors reports a
reading each timestep; we flag *anomalies* — sensors whose reading deviates
from both their neighborhood's current average and their own exponentially
weighted history.

The computation exercises every construct:

* ``compute`` with two supersteps per timestep (exchange boundary averages
  between subgraphs, then score anomalies);
* per-subgraph persistent ``state`` (the EWMA history);
* ``send_to_subgraph`` for neighbor averages across partition boundaries;
* ``send_to_next_timestep`` carrying each subgraph's anomaly count forward;
* ``end_of_timestep`` emitting results;
* ``vote_to_halt`` / BSP quiescence.

Run:  python examples/custom_computation.py
"""

import numpy as np

from repro import (
    AttributeSchema,
    AttributeSpec,
    GraphTemplate,
    Pattern,
    TimeSeriesComputation,
    build_collection,
    partition_graph,
    run_application,
)

GRID = 24  # sensors per side
TIMESTEPS = 12
ALPHA = 0.3  # EWMA weight
THRESHOLD = 4.0  # degrees of deviation that count as anomalous


def sensor_grid() -> GraphTemplate:
    src, dst = [], []
    for r in range(GRID):
        for c in range(GRID):
            v = r * GRID + c
            if c + 1 < GRID:
                src.append(v)
                dst.append(v + 1)
            if r + 1 < GRID:
                src.append(v)
                dst.append(v + GRID)
    return GraphTemplate(
        GRID * GRID,
        src,
        dst,
        vertex_schema=AttributeSchema([AttributeSpec("temperature", "float")]),
        name="sensor-grid",
    )


def weather(instance, timestep):
    """Smooth field + drifting hot spot + a few faulty sensors."""
    rng = np.random.default_rng(42 + timestep)
    xs, ys = np.meshgrid(np.arange(GRID), np.arange(GRID))
    field = 20 + 5 * np.sin(xs / 6 + timestep / 3) + 3 * np.cos(ys / 5)
    cx, cy = (timestep * 2) % GRID, (timestep * 3) % GRID
    hot = 12 * np.exp(-(((xs - cx) ** 2 + (ys - cy) ** 2) / 8.0))
    noise = rng.normal(0, 0.4, (GRID, GRID))
    temps = (field + hot + noise).ravel()
    faulty = rng.choice(GRID * GRID, size=3, replace=False)
    temps[faulty] += rng.choice([-15, 15], size=3)
    instance.vertex_values.set_column("temperature", temps)


class AnomalyDetector(TimeSeriesComputation):
    """Flags sensors deviating from neighborhood + their own history."""

    pattern = Pattern.SEQUENTIALLY_DEPENDENT

    def compute(self, ctx):
        sg, st = ctx.subgraph, ctx.state
        if ctx.superstep == 0:
            temps = ctx.instance.vertex_column("temperature")[sg.vertices]
            st["temps"] = temps
            if "ewma" not in st:
                st["ewma"] = temps.copy()
            # Ship boundary temperatures to neighbor subgraphs so their
            # neighborhood averages see across the partition cut.
            remote = sg.remote
            if len(remote):
                for nbr in sg.neighbor_subgraphs:
                    rows = remote.dst_subgraph == nbr
                    ctx.send_to_subgraph(
                        int(nbr),
                        (sg.vertices[remote.src_local[rows]], temps[remote.src_local[rows]]),
                    )
            return

        # Superstep 1: neighborhood average = local adjacency + remote info.
        temps = st["temps"]
        n = sg.num_vertices
        slot_src = np.repeat(np.arange(n), np.diff(sg.indptr))
        nbr_sum = np.zeros(n)
        nbr_cnt = np.zeros(n)
        np.add.at(nbr_sum, slot_src, temps[sg.indices])
        np.add.at(nbr_cnt, slot_src, 1.0)
        foreign = {}
        for msg in ctx.messages:
            verts, values = msg.payload
            foreign.update(zip(verts.tolist(), values.tolist()))
        if foreign:
            remote = sg.remote
            for row in range(len(remote)):
                gv = int(remote.dst_global[row])
                if gv in foreign:
                    lv = int(remote.src_local[row])
                    nbr_sum[lv] += foreign[gv]
                    nbr_cnt[lv] += 1.0
        nbr_avg = nbr_sum / np.maximum(nbr_cnt, 1.0)

        spatial_dev = np.abs(temps - nbr_avg)
        temporal_dev = np.abs(temps - st["ewma"])
        anomalies = (spatial_dev > THRESHOLD) & (temporal_dev > THRESHOLD)
        st["anomalies"] = sg.vertices[anomalies]
        st["ewma"] = ALPHA * temps + (1 - ALPHA) * st["ewma"]
        ctx.vote_to_halt()

    def end_of_timestep(self, ctx):
        anomalies = ctx.state.get("anomalies", np.empty(0, dtype=np.int64))
        if len(anomalies):
            ctx.output((ctx.timestep, anomalies))
        running = ctx.state.get("running", 0) + len(anomalies)
        ctx.state["running"] = running
        ctx.send_to_next_timestep(running)


def main() -> None:
    template = sensor_grid()
    collection = build_collection(template, TIMESTEPS, weather, delta=60.0)
    pg = partition_graph(template, 4)
    result = run_application(AnomalyDetector(), pg, collection)

    print(f"sensor grid {GRID}x{GRID}, {TIMESTEPS} hourly readings, "
          f"{pg.num_partitions} partitions\n")
    per_t = {}
    for t, _sg, (timestep, anomalies) in result.outputs:
        per_t.setdefault(timestep, []).extend(int(v) for v in anomalies)
    for t in range(TIMESTEPS):
        hits = sorted(per_t.get(t, []))
        coords = ", ".join(f"({v // GRID},{v % GRID})" for v in hits[:6])
        more = f" (+{len(hits) - 6} more)" if len(hits) > 6 else ""
        print(f"  t={t:02d}: {len(hits):2d} anomalous sensors  {coords}{more}")
    total = sum(len(v) for v in per_t.values())
    print(f"\ntotal anomaly flags: {total} "
          f"({result.metrics.total_supersteps()} supersteps, "
          f"{result.metrics.total_messages()} messages)")


if __name__ == "__main__":
    main()
